// The IoT Security Service (IoTSSP, paper Sect. III-B).
//
// Receives device fingerprints from Security Gateways, identifies the
// device-type with the two-stage identifier, assesses the type against the
// vulnerability database and returns the isolation level to enforce plus —
// for Restricted devices — the permitted vendor-cloud endpoints. The
// service is stateless with respect to its gateway clients, mirroring the
// paper's privacy design.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/identifier.hpp"
#include "core/vulnerability_db.hpp"
#include "net/ip_address.hpp"
#include "sdn/isolation.hpp"

namespace iotsentinel::core {

/// The IoTSSP's answer to one fingerprint submission.
struct ServiceVerdict {
  /// Identified type name; empty for new/unknown device-types.
  std::string device_type;
  bool is_known = false;
  sdn::IsolationLevel level = sdn::IsolationLevel::kStrict;
  /// Endpoints a Restricted device may still reach (vendor cloud).
  std::vector<net::Ipv4Address> permitted_endpoints;
  /// Full identification trace (candidates, discrimination use, ...).
  IdentificationResult identification;
};

/// The cloud-side service.
class IoTSecurityService {
 public:
  IoTSecurityService(DeviceIdentifier identifier, VulnerabilityDb db)
      : identifier_(std::move(identifier)), db_(std::move(db)) {}

  /// Registers the permitted cloud endpoints for a device-type (consulted
  /// when the type is assessed Restricted).
  void register_endpoints(const std::string& device_type,
                          std::vector<net::Ipv4Address> endpoints);

  /// The paper's request path: fingerprint in, isolation level out.
  [[nodiscard]] ServiceVerdict assess(const fp::Fingerprint& f) const;

  [[nodiscard]] const DeviceIdentifier& identifier() const {
    return identifier_;
  }
  [[nodiscard]] const VulnerabilityDb& vulnerability_db() const { return db_; }

 private:
  DeviceIdentifier identifier_;
  VulnerabilityDb db_;
  std::unordered_map<std::string, std::vector<net::Ipv4Address>> endpoints_;
};

}  // namespace iotsentinel::core
