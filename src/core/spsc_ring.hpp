// Single-producer / single-consumer lock-free ring buffer.
//
// The sharded gateway's backbone: the ingest thread routes frames into one
// ring per worker shard (producer = ingest, consumer = worker), and the
// classifier thread routes verdict messages back the same way (producer =
// classifier, consumer = worker). One writer and one reader per ring is a
// hard contract — it is what lets push and pop run with two atomic
// operations each and no locks.
//
// Implementation notes (classic Lamport queue, Vyukov-style index caches):
//   * head_ is the consumer cursor, tail_ the producer cursor; both grow
//     monotonically and are reduced modulo the power-of-two capacity only
//     when indexing, so full (tail - head == capacity) and empty
//     (tail == head) need no wasted slot.
//   * The producer caches its last-seen head_ (and the consumer its
//     last-seen tail_) so the opposite cursor's cache line is touched only
//     when the cached view says the ring might be full/empty.
//   * Slot handoff is synchronized by the release store of the advancing
//     cursor paired with the acquire load on the other side; slots
//     themselves need no atomicity.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

namespace iotsentinel::core {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit SpscRing(std::size_t min_capacity)
      : slots_(std::bit_ceil(min_capacity < 2 ? std::size_t{2} : min_capacity)),
        mask_(slots_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Moves `value` into the ring and returns true; returns
  /// false (leaving `value` untouched) when the ring is full.
  bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == slots_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, copying overload.
  bool try_push(const T& value) {
    T copy(value);
    return try_push(std::move(copy));
  }

  /// Consumer side. Moves the oldest element into `out` and returns true;
  /// returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Snapshot emptiness check, callable from either side.
  [[nodiscard]] bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  /// Snapshot element count, callable from either side.
  [[nodiscard]] std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  /// Separate the cursors (and each side's cache of the opposite cursor)
  /// onto their own cache lines so producer and consumer do not false-share.
  static constexpr std::size_t kCacheLine = 64;

  std::vector<T> slots_;
  std::size_t mask_;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // producer cursor
  alignas(kCacheLine) std::size_t head_cache_ = 0;  // producer's view of head_
  alignas(kCacheLine) std::size_t tail_cache_ = 0;  // consumer's view of tail_
};

}  // namespace iotsentinel::core
