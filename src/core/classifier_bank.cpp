#include "core/classifier_bank.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "ml/rng.hpp"

namespace iotsentinel::core {
namespace {

/// Builds the binary training set for one type: label 1 = the type's
/// fingerprints, label 0 = up to ratio*|positives| fingerprints sampled
/// without replacement from the pool of other types.
ml::Dataset make_binary_dataset(
    const std::vector<fp::FixedFingerprint>& positives,
    const std::vector<const fp::FixedFingerprint*>& negative_pool,
    double ratio, ml::Rng& rng) {
  ml::Dataset data(positives.empty() ? 0 : positives.front().size());
  const auto want_negatives = static_cast<std::size_t>(
      ratio * static_cast<double>(positives.size()));
  const std::size_t n_neg = std::min(want_negatives, negative_pool.size());
  const auto chosen = rng.sample_without_replacement(negative_pool.size(), n_neg);
  for (std::size_t idx : chosen) data.add(*negative_pool[idx], 0);
  for (const auto& f : positives) data.add(f, 1);
  return data;
}

}  // namespace

void ClassifierBank::train(
    const std::vector<std::string>& type_names,
    const std::vector<std::vector<fp::FixedFingerprint>>& by_type) {
  names_ = type_names;
  forests_.assign(type_names.size(), ml::RandomForest{});

  ml::Rng rng(config_.seed);
  for (std::size_t t = 0; t < by_type.size(); ++t) {
    std::vector<const fp::FixedFingerprint*> negative_pool;
    for (std::size_t other = 0; other < by_type.size(); ++other) {
      if (other == t) continue;
      for (const auto& f : by_type[other]) negative_pool.push_back(&f);
    }
    ml::Rng sample_rng = rng.fork();
    const ml::Dataset data = make_binary_dataset(
        by_type[t], negative_pool, config_.negative_ratio, sample_rng);
    ml::ForestConfig fc = config_.forest;
    fc.seed = sample_rng.next_u64();
    forests_[t].train(data, fc);
  }
  compile_all();
}

std::size_t ClassifierBank::add_type(
    const std::string& name, const std::vector<fp::FixedFingerprint>& positives,
    const std::vector<const fp::FixedFingerprint*>& negative_pool) {
  // Incremental learning: only this type's forest is (re)built.
  auto it = std::find(names_.begin(), names_.end(), name);
  std::size_t index;
  if (it == names_.end()) {
    index = names_.size();
    names_.push_back(name);
    forests_.emplace_back();
  } else {
    index = static_cast<std::size_t>(it - names_.begin());
  }
  const RetrainPlan plan = retrain_plan(index, positives, negative_pool);
  forests_[index].train(plan.data, plan.forest);
  compile_one(index);
  return index;
}

ClassifierBank::RetrainPlan ClassifierBank::retrain_plan(
    std::size_t index, const std::vector<fp::FixedFingerprint>& positives,
    const std::vector<const fp::FixedFingerprint*>& negative_pool) const {
  // Must mirror add_type exactly: same per-index RNG stream for the
  // negative subsample, forest seed drawn right after it. Training on
  // this plan elsewhere then produces the same forest add_type would.
  ml::Rng rng(config_.seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  RetrainPlan plan{make_binary_dataset(positives, negative_pool,
                                       config_.negative_ratio, rng),
                   config_.forest};
  plan.forest.seed = rng.next_u64();
  return plan;
}

void ClassifierBank::replace_forest(std::size_t index,
                                    ml::RandomForest forest) {
  assert(index < forests_.size());
  forests_[index] = std::move(forest);
  compile_one(index);
}

void ClassifierBank::compile_one(std::size_t t) {
  if (compiled_.size() < forests_.size()) compiled_.resize(forests_.size());
  compiled_[t] = forests_[t].compile();
}

void ClassifierBank::compile_all() {
  compiled_.resize(forests_.size());
  for (std::size_t t = 0; t < forests_.size(); ++t) {
    compiled_[t] = forests_[t].compile();
  }
}

std::vector<double> ClassifierBank::scores(
    const fp::FixedFingerprint& fingerprint) const {
  std::vector<double> out(compiled_.size(), 0.0);
  scores_into(fingerprint, out);
  return out;
}

void ClassifierBank::scores_into(const fp::FixedFingerprint& fingerprint,
                                 std::span<double> out) const {
  assert(out.size() == compiled_.size());
  for (std::size_t t = 0; t < compiled_.size(); ++t) {
    out[t] = compiled_[t].positive_score(fingerprint);
  }
}

void ClassifierBank::score_batch(std::span<const fp::FixedFingerprint> batch,
                                 std::span<double> out) const {
  score_batch_with(compiled_, batch, out);
}

void ClassifierBank::score_batch_with(
    std::span<const ml::CompiledForest> engines,
    std::span<const fp::FixedFingerprint> batch, std::span<double> out) const {
  const std::size_t types = engines.size();
  assert(types == compiled_.size());
  assert(out.size() == batch.size() * types);
  for (std::size_t t = 0; t < types; ++t) {
    const ml::CompiledForest& engine = engines[t];
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out[i * types + t] = engine.positive_score(batch[i]);
    }
  }
}

std::vector<std::size_t> ClassifierBank::accepted(
    const fp::FixedFingerprint& fingerprint) const {
  std::vector<std::size_t> out;
  accepted_into(fingerprint, out);
  return out;
}

void ClassifierBank::accepted_into(const fp::FixedFingerprint& fingerprint,
                                   std::vector<std::size_t>& out) const {
  out.clear();
  for (std::size_t t = 0; t < compiled_.size(); ++t) {
    if (compiled_[t].positive_score(fingerprint) >= config_.accept_threshold) {
      out.push_back(t);
    }
  }
}

double ClassifierBank::score_one(std::size_t type_index,
                                 const fp::FixedFingerprint& f) const {
  return compiled_[type_index].positive_score(f);
}

namespace {

void write_string(net::ByteWriter& w, const std::string& s) {
  w.u32be(static_cast<std::uint32_t>(s.size()));
  w.bytes(s);
}

std::optional<std::string> read_string(net::ByteReader& r) {
  auto len = r.u32be();
  if (!len || *len > 4096) return std::nullopt;
  auto view = r.bytes(*len);
  if (!view) return std::nullopt;
  return std::string(view->begin(), view->end());
}

}  // namespace

void ClassifierBank::save(net::ByteWriter& w) const {
  w.bytes(std::string("IBK2"));
  const std::size_t length_at = w.size();
  w.u32be(0);  // payload length, patched below
  const std::size_t payload_at = w.size();
  w.u32be(static_cast<std::uint32_t>(config_.forest.num_trees));
  w.f32be(static_cast<float>(config_.negative_ratio));
  w.f32be(static_cast<float>(config_.accept_threshold));
  w.u64be(config_.seed);
  w.u32be(static_cast<std::uint32_t>(names_.size()));
  for (std::size_t t = 0; t < names_.size(); ++t) {
    write_string(w, names_[t]);
    forests_[t].save(w);
  }
  w.patch_u32be(length_at, static_cast<std::uint32_t>(w.size() - payload_at));
}

std::optional<ClassifierBank> ClassifierBank::load(net::ByteReader& r) {
  if (!r.read_tag("IBK2")) return std::nullopt;
  auto length = r.u32be();
  if (!length) return std::nullopt;
  auto payload = r.slice(*length);
  if (!payload) return std::nullopt;
  BankConfig config;
  auto num_trees = payload->u32be();
  auto neg_ratio = payload->f32be();
  auto threshold = payload->f32be();
  auto seed = payload->u64be();
  auto count = payload->u32be();
  if (!num_trees || !neg_ratio || !threshold || !seed || !count ||
      *count > 1'000'000) {
    return std::nullopt;
  }
  config.forest.num_trees = *num_trees;
  config.negative_ratio = *neg_ratio;
  config.accept_threshold = *threshold;
  config.seed = *seed;
  ClassifierBank bank(config);
  for (std::uint32_t t = 0; t < *count; ++t) {
    auto name = read_string(*payload);
    if (!name) return std::nullopt;
    auto forest = ml::RandomForest::load(*payload);
    if (!forest) return std::nullopt;
    bank.names_.push_back(std::move(*name));
    bank.forests_.push_back(std::move(*forest));
  }
  // Payload bytes after the last type record (appended by newer writers)
  // are skipped by construction: `payload` is a slice of the frame.
  //
  // Loaded forests serve through the same compiled engines as freshly
  // trained ones.
  bank.compile_all();
  return bank;
}

std::optional<ClassifierBank> ClassifierBank::load_v0(net::ByteReader& r) {
  if (!r.read_tag("IBK1")) return std::nullopt;
  BankConfig config;
  auto num_trees = r.u32be();
  auto neg_ratio = r.f32be();
  auto threshold = r.f32be();
  auto seed = r.u64be();
  auto count = r.u32be();
  if (!num_trees || !neg_ratio || !threshold || !seed || !count ||
      *count > 1'000'000) {
    return std::nullopt;
  }
  config.forest.num_trees = *num_trees;
  config.negative_ratio = *neg_ratio;
  config.accept_threshold = *threshold;
  config.seed = *seed;
  ClassifierBank bank(config);
  for (std::uint32_t t = 0; t < *count; ++t) {
    auto name = read_string(r);
    if (!name) return std::nullopt;
    auto forest = ml::RandomForest::load_v0(r);
    if (!forest) return std::nullopt;
    bank.names_.push_back(std::move(*name));
    bank.forests_.push_back(std::move(*forest));
  }
  bank.compile_all();
  return bank;
}

}  // namespace iotsentinel::core
