// Cross-validation evaluation of the identification pipeline (paper
// Sect. VI-B): stratified 10-fold CV repeated R times, confusion matrix
// over actual vs predicted device-types, plus pipeline statistics (how
// often stage-2 discrimination runs, how many edit distances it costs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/identifier.hpp"
#include "ml/metrics.hpp"

namespace iotsentinel::core {

/// Cross-validation settings.
struct CvConfig {
  std::size_t folds = 10;
  std::size_t repetitions = 10;
  IdentifierConfig identifier;
  std::uint64_t seed = 1234;
};

/// Aggregated outcome over all folds and repetitions.
struct CvOutcome {
  /// Rows/cols in type order; an extra virtual column is NOT used —
  /// rejected-by-all test fingerprints are counted in `rejected`.
  ml::ConfusionMatrix confusion;
  /// Fig. 5's per-type "ratio of correct identification".
  std::vector<double> per_type_accuracy;
  /// The paper's global ratio (0.815 on their data).
  double global_accuracy = 0.0;
  /// Test fingerprints rejected by every classifier (counted as errors in
  /// global_accuracy's denominator).
  std::uint64_t rejected = 0;
  /// Fraction of test fingerprints that matched >1 classifier (the paper
  /// reports 55%).
  double discrimination_fraction = 0.0;
  /// Mean edit-distance computations per identification (paper: ~7).
  double mean_distance_computations = 0.0;
};

/// Runs the full CV protocol on a per-type fingerprint corpus.
/// `by_type[t]` holds the fingerprints F of `type_names[t]`.
CvOutcome cross_validate(
    const std::vector<std::string>& type_names,
    const std::vector<std::vector<fp::Fingerprint>>& by_type,
    const CvConfig& config);

}  // namespace iotsentinel::core
