// Two-stage device-type identification (paper Sect. IV-B).
//
// Stage 1: the ClassifierBank scores F' against every per-type classifier.
//   - exactly one accept  -> that type is the answer
//   - no accepts          -> the fingerprint is a *new* device-type
//   - several accepts     -> stage 2
// Stage 2: Damerau-Levenshtein discrimination — the variable-length F is
// compared against (up to) five stored reference fingerprints of each
// candidate type; the lowest summed normalized distance (global
// dissimilarity score s_i in [0,5]) wins.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/classifier_bank.hpp"
#include "fingerprint/fingerprint.hpp"

namespace iotsentinel::core {

/// Identifier configuration.
struct IdentifierConfig {
  BankConfig bank;
  /// Reference fingerprints F stored per type for edit-distance
  /// discrimination (the paper uses five).
  std::size_t references_per_type = 5;
  /// Packets concatenated into F' (the paper settled on 12 after a
  /// preliminary analysis; the prefix-length ablation bench sweeps this).
  std::size_t fixed_prefix = fp::kPrefixPackets;
  /// Seed for reference selection.
  std::uint64_t seed = 23;
};

/// Outcome of identifying one fingerprint.
struct IdentificationResult {
  /// Winning type index, or nullopt when rejected by every classifier.
  std::optional<std::size_t> type_index;
  /// Winning type name ("" for new device-types).
  std::string type_name;
  /// True when no classifier accepted: a device-type the bank has never
  /// been trained on.
  bool is_new_type = false;
  /// Classifier-accepted candidates (before discrimination).
  std::vector<std::size_t> candidates;
  /// True when stage 2 ran (more than one candidate).
  bool used_discrimination = false;
  /// Number of edit-distance computations stage 2 performed.
  std::size_t distance_computations = 0;
  /// Winning dissimilarity score s_i (only meaningful after stage 2).
  double dissimilarity = 0.0;
};

/// The trained two-stage identifier.
class DeviceIdentifier {
 public:
  explicit DeviceIdentifier(IdentifierConfig config = {});

  /// Trains the bank and selects reference fingerprints. `by_type[t]` are
  /// the training fingerprints F of type `type_names[t]`; F' vectors are
  /// derived internally.
  void train(const std::vector<std::string>& type_names,
             const std::vector<std::vector<fp::Fingerprint>>& by_type);

  /// Full two-stage identification of a captured fingerprint.
  [[nodiscard]] IdentificationResult identify(const fp::Fingerprint& f) const;

  /// Identification into a caller-owned result: resets every field and
  /// reuses `out.candidates`' capacity, so callers looping over many
  /// fingerprints (cross-validation, batch onboarding) avoid the
  /// per-result vector churn. Scoring runs on the compiled forests.
  void identify_into(const fp::Fingerprint& f, IdentificationResult& out) const;

  /// Batched two-stage identification. Stage 1 scores the whole batch
  /// through the bank's type-major `score_batch` sweep (one compiled
  /// forest stays hot in cache across all fingerprints); stage 2 then
  /// runs per fingerprint. Results are field-for-field identical to
  /// calling `identify_into` on each element. `out` is resized to
  /// `fs.size()`, reusing existing elements' buffers.
  void identify_batch(std::span<const fp::Fingerprint* const> fs,
                      std::vector<IdentificationResult>& out) const;

  /// `identify_batch` with stage 1 served by an explicit engine set (a
  /// hot-swapped ml::ForestBank snapshot) instead of the bank's own
  /// compiled forests. Stage 2 (references, type names) is unchanged.
  /// `engines.size()` must equal `num_types()`. With the bank's own
  /// engines this is exactly `identify_batch`.
  void identify_batch_with(std::span<const ml::CompiledForest> engines,
                           std::span<const fp::Fingerprint* const> fs,
                           std::vector<IdentificationResult>& out) const;

  /// Stage 1 only (exposed for the Table-IV timing bench).
  [[nodiscard]] std::vector<std::size_t> classify(
      const fp::FixedFingerprint& fixed) const;

  /// Reusable-buffer variant of `classify` (clears `out` then appends).
  void classify_into(const fp::FixedFingerprint& fixed,
                     std::vector<std::size_t>& out) const;

  /// Stage 2 only: picks the best of `candidates` for `f` by dissimilarity.
  /// `distance_computations`, when non-null, receives the comparison count.
  [[nodiscard]] std::size_t discriminate(
      const fp::Fingerprint& f, const std::vector<std::size_t>& candidates,
      std::size_t* distance_computations = nullptr) const;

  [[nodiscard]] const ClassifierBank& bank() const { return bank_; }
  [[nodiscard]] const IdentifierConfig& config() const { return config_; }
  [[nodiscard]] std::size_t num_types() const { return bank_.num_types(); }
  [[nodiscard]] const std::vector<fp::Fingerprint>& references(
      std::size_t type_index) const {
    return references_[type_index];
  }

  /// Reassembles a trained identifier from its persisted parts — the
  /// inverse of reading `config()`, `bank()` and `references(t)`. This
  /// is the loader hook of the model store (core/model_store.hpp), which
  /// persists the three parts as separate sections of the IOTS1
  /// container. Returns nullopt when the parts are inconsistent:
  /// `references.size() != bank.num_types()`, or a `fixed_prefix` of 0
  /// or over 1024 packets.
  static std::optional<DeviceIdentifier> from_parts(
      const IdentifierConfig& config, ClassifierBank bank,
      std::vector<std::vector<fp::Fingerprint>> references);

 private:
  /// Clears every field of `result` while keeping its buffers' capacity.
  static void reset_result(IdentificationResult& result);

  /// Shared stage-1 tail + stage 2: consumes `result.candidates` (already
  /// populated) and fills the verdict fields.
  void finish_identification(const fp::Fingerprint& f,
                             IdentificationResult& result) const;

  IdentifierConfig config_;
  ClassifierBank bank_;
  /// references_[t] = up to `references_per_type` stored F of type t.
  std::vector<std::vector<fp::Fingerprint>> references_;
};

}  // namespace iotsentinel::core
