// Legacy-installation support (paper Sect. VIII-A).
//
// A brownfield network authenticates every device with one shared
// WPA2-Personal PSK; if any vulnerable device leaked it, the whole network
// is suspect. IoT Sentinel's migration plan:
//   1. all legacy devices start in the *untrusted* overlay,
//   2. each is fingerprinted from its standby/operation traffic and
//      identified,
//   3. devices assessed clean AND supporting WPS re-keying are issued a
//      fresh device-specific PSK and moved to the *trusted* overlay,
//   4. clean devices without WPS support stay untrusted and the user is
//      prompted to re-introduce them manually,
//   5. vulnerable devices stay untrusted under their assessed level; if
//      they also have an uncontrolled radio channel, a remove-device
//      notification is raised (Sect. III-C.3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/notifications.hpp"
#include "ml/rng.hpp"
#include "core/security_service.hpp"
#include "sdn/controller.hpp"

namespace iotsentinel::core {

/// One device of the legacy installation, as known before migration.
struct LegacyDevice {
  net::MacAddress mac;
  /// Does the device implement WPS re-keying (WiFi Simple Configuration)?
  bool supports_wps_rekeying = true;
  /// Does it own a channel the gateway cannot control (BT/LTE/RF)?
  bool has_uncontrolled_channel = false;
  /// Operational-traffic fingerprint captured from the live network.
  fp::Fingerprint standby_fingerprint;
};

/// Outcome for one migrated device.
struct MigrationOutcome {
  net::MacAddress mac;
  std::string device_type;  // "" when unidentified
  sdn::IsolationLevel level = sdn::IsolationLevel::kStrict;
  sdn::Overlay overlay = sdn::Overlay::kUntrusted;
  /// Device-specific PSK issued via WPS re-keying (empty when not issued).
  std::string issued_psk;
  bool needs_manual_reauth = false;
  bool flagged_for_removal = false;
};

/// Drives the overlay migration against the real controller.
class LegacyMigrator {
 public:
  /// `service` identifies/assesses; rules land in `controller`;
  /// user-facing outcomes land in `notifications`.
  LegacyMigrator(const IoTSecurityService& service,
                 sdn::Controller& controller,
                 NotificationCenter& notifications,
                 std::uint64_t psk_seed = 0x5ec2e7);

  /// Migrates one device; installs its enforcement rule and returns the
  /// outcome (also retrievable later via `outcomes()`).
  MigrationOutcome migrate(const LegacyDevice& device, std::uint64_t now_us);

  /// Migrates a whole installation.
  std::vector<MigrationOutcome> migrate_all(
      const std::vector<LegacyDevice>& devices, std::uint64_t now_us);

  /// PSK issued to a device (nullopt when none was).
  [[nodiscard]] std::optional<std::string> psk_of(
      const net::MacAddress& mac) const;

  [[nodiscard]] const std::vector<MigrationOutcome>& outcomes() const {
    return outcomes_;
  }

 private:
  std::string mint_psk();

  const IoTSecurityService& service_;
  sdn::Controller& controller_;
  NotificationCenter& notifications_;
  ml::Rng psk_rng_;
  std::unordered_map<net::MacAddress, std::string> psks_;
  std::vector<MigrationOutcome> outcomes_;
};

}  // namespace iotsentinel::core
