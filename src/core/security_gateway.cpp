#include "core/security_gateway.hpp"

#include "net/parser.hpp"

namespace iotsentinel::core {

sdn::EnforcementRule rule_for_verdict(const ServiceVerdict& verdict,
                                      const net::MacAddress& device,
                                      std::uint64_t now_us) {
  sdn::EnforcementRule rule;
  rule.device = device;
  rule.level = verdict.level;
  for (const auto& ip : verdict.permitted_endpoints) {
    rule.permitted_ips.insert(ip);
  }
  rule.installed_at_us = now_us;
  return rule;
}

GatewayEvent event_for_verdict(const ServiceVerdict& verdict,
                               const net::MacAddress& device,
                               std::uint64_t at_us) {
  GatewayEvent event;
  event.device = device;
  event.device_type = verdict.device_type;
  event.level = verdict.level;
  event.is_new_type = verdict.identification.is_new_type;
  event.at_us = at_us;
  return event;
}

bool is_malformed_frame(std::span<const std::uint8_t> frame) {
  if (frame.size() < 14) return true;  // truncated Ethernet header
  // Source MAC at bytes 6..11: all-zero sources are invalid, and a
  // group (multicast/broadcast) bit in a *source* address violates 802.3.
  bool all_zero = true;
  for (std::size_t i = 6; i < 12; ++i) {
    if (frame[i] != 0) {
      all_zero = false;
      break;
    }
  }
  return all_zero || (frame[6] & 0x01) != 0;
}

SecurityGateway::SecurityGateway(const IoTSecurityService& service,
                                 GatewayConfig config)
    : service_(service),
      extractor_(config.extractor),
      controller_(config.controller),
      switch_(controller_) {
  extractor_.on_capture_complete(
      [this](const fp::DeviceCapture& capture) { handle_capture(capture); });
}

sdn::SwitchResult SecurityGateway::on_frame(
    std::span<const std::uint8_t> frame, std::uint64_t timestamp_us) {
  last_ts_us_ = timestamp_us;
  if (is_malformed_frame(frame)) {
    ++malformed_;
    ++dropped_;
    return {sdn::FlowAction::kDrop, sdn::SwitchPath::kFastPath, "malformed"};
  }
  const net::ParsedPacket pkt = net::parse_ethernet_frame(frame, timestamp_us);
  tracker_.observe(pkt, frame);
  extractor_.observe(pkt);
  const sdn::SwitchResult result = switch_.process(pkt, timestamp_us);
  if (result.action == sdn::FlowAction::kDrop) ++dropped_;
  return result;
}

void SecurityGateway::advance_time(std::uint64_t now_us) {
  last_ts_us_ = now_us;
  extractor_.advance_time(now_us);
  switch_.expire_flows(now_us);
}

std::size_t SecurityGateway::expire_departed(std::uint64_t now_us,
                                             std::uint64_t idle_us) {
  tracker_.idle_devices_into(now_us, idle_us, departed_scratch_);
  for (const net::MacAddress& mac : departed_scratch_) {
    controller_.remove_device(mac);
    switch_.flush_device(mac);
    // Discard any half-open capture and the fingerprinted marker too: a
    // departed device that rejoins must be fingerprinted and identified
    // afresh, not stay provisional forever (or worse, have a stale
    // capture resurrect its rule after departure).
    extractor_.forget(mac);
    tracker_.forget(mac);
  }
  return departed_scratch_.size();
}

void SecurityGateway::finish_pending_captures() { extractor_.flush_all(); }

void SecurityGateway::handle_capture(const fp::DeviceCapture& capture) {
  // Ship the fingerprint to the IoTSSP; translate the verdict into an
  // enforcement rule for this device.
  const ServiceVerdict verdict = service_.assess(capture.fingerprint);

  controller_.apply_rule(rule_for_verdict(verdict, capture.mac, last_ts_us_),
                         last_ts_us_);
  // Flows admitted under the provisional (no-rule) policy must be
  // re-evaluated under the device's real isolation level.
  switch_.flush_device(capture.mac);

  tracker_.mark_identified(capture.mac, verdict.device_type, verdict.level);

  events_.push_back(event_for_verdict(verdict, capture.mac, last_ts_us_));
  if (observer_) observer_(events_.back());
}

}  // namespace iotsentinel::core
