#include "core/identifier.hpp"

#include <limits>

#include "distance/damerau_levenshtein.hpp"
#include "ml/rng.hpp"

namespace iotsentinel::core {

DeviceIdentifier::DeviceIdentifier(IdentifierConfig config)
    : config_(config), bank_(config.bank) {}

void DeviceIdentifier::train(
    const std::vector<std::string>& type_names,
    const std::vector<std::vector<fp::Fingerprint>>& by_type) {
  // Derive the fixed-size vectors for the classifier bank.
  std::vector<std::vector<fp::FixedFingerprint>> fixed_by_type;
  fixed_by_type.reserve(by_type.size());
  for (const auto& fingerprints : by_type) {
    auto& fixed = fixed_by_type.emplace_back();
    fixed.reserve(fingerprints.size());
    for (const auto& f : fingerprints)
      fixed.push_back(f.to_fixed(config_.fixed_prefix));
  }
  bank_.train(type_names, fixed_by_type);

  // Select the stage-2 reference fingerprints per type.
  ml::Rng rng(config_.seed);
  references_.clear();
  references_.resize(by_type.size());
  for (std::size_t t = 0; t < by_type.size(); ++t) {
    const auto& pool = by_type[t];
    const std::size_t k = std::min(config_.references_per_type, pool.size());
    for (std::size_t idx : rng.sample_without_replacement(pool.size(), k)) {
      references_[t].push_back(pool[idx]);
    }
  }
}

std::vector<std::size_t> DeviceIdentifier::classify(
    const fp::FixedFingerprint& fixed) const {
  return bank_.accepted(fixed);
}

void DeviceIdentifier::classify_into(const fp::FixedFingerprint& fixed,
                                     std::vector<std::size_t>& out) const {
  bank_.accepted_into(fixed, out);
}

std::size_t DeviceIdentifier::discriminate(
    const fp::Fingerprint& f, const std::vector<std::size_t>& candidates,
    std::size_t* distance_computations) const {
  std::size_t computations = 0;
  double best_score = std::numeric_limits<double>::infinity();
  std::size_t best_type = candidates.front();
  for (std::size_t t : candidates) {
    double score = 0.0;
    for (const auto& ref : references_[t]) {
      score += dist::normalized_fingerprint_distance(f, ref);
      ++computations;
    }
    if (score < best_score) {
      best_score = score;
      best_type = t;
    }
  }
  if (distance_computations) *distance_computations = computations;
  return best_type;
}

IdentificationResult DeviceIdentifier::identify(
    const fp::Fingerprint& f) const {
  IdentificationResult result;
  identify_into(f, result);
  return result;
}

void DeviceIdentifier::reset_result(IdentificationResult& result) {
  // Reset by whole-struct assignment so fields added to
  // IdentificationResult later cannot leak between reused results; the
  // candidates and type_name buffers keep their capacity.
  std::vector<std::size_t> candidates = std::move(result.candidates);
  std::string type_name = std::move(result.type_name);
  candidates.clear();
  type_name.clear();
  result = IdentificationResult{};
  result.candidates = std::move(candidates);
  result.type_name = std::move(type_name);
}

void DeviceIdentifier::identify_into(const fp::Fingerprint& f,
                                     IdentificationResult& result) const {
  reset_result(result);
  classify_into(f.to_fixed(config_.fixed_prefix), result.candidates);
  finish_identification(f, result);
}

void DeviceIdentifier::identify_batch(
    std::span<const fp::Fingerprint* const> fs,
    std::vector<IdentificationResult>& out) const {
  identify_batch_with(bank_.engines(), fs, out);
}

void DeviceIdentifier::identify_batch_with(
    std::span<const ml::CompiledForest> engines,
    std::span<const fp::Fingerprint* const> fs,
    std::vector<IdentificationResult>& out) const {
  out.resize(fs.size());
  if (fs.empty()) return;

  // Stage 1, batched: derive every F' and sweep the engines type-major so
  // a single compiled forest scans the whole batch before the next one is
  // touched. Scores (and therefore accept sets) are bit-identical to the
  // per-fingerprint scores_into path when `engines` is the bank's own set.
  std::vector<fp::FixedFingerprint> fixed;
  fixed.reserve(fs.size());
  for (const fp::Fingerprint* f : fs) {
    fixed.push_back(f->to_fixed(config_.fixed_prefix));
  }
  const std::size_t types = bank_.num_types();
  std::vector<double> scores(fs.size() * types);
  bank_.score_batch_with(engines, fixed, scores);

  const double threshold = bank_.config().accept_threshold;
  for (std::size_t i = 0; i < fs.size(); ++i) {
    IdentificationResult& result = out[i];
    reset_result(result);
    for (std::size_t t = 0; t < types; ++t) {
      if (scores[i * types + t] >= threshold) result.candidates.push_back(t);
    }
    finish_identification(*fs[i], result);
  }
}

void DeviceIdentifier::finish_identification(const fp::Fingerprint& f,
                                             IdentificationResult& result) const {
  if (result.candidates.empty()) {
    result.is_new_type = true;
    return;
  }
  if (result.candidates.size() == 1) {
    result.type_index = result.candidates.front();
    result.type_name = bank_.type_name(*result.type_index);
    return;
  }

  result.used_discrimination = true;
  const std::size_t winner =
      discriminate(f, result.candidates, &result.distance_computations);
  // Recompute the winner's score for reporting (cheap relative to stage 2).
  double score = 0.0;
  for (const auto& ref : references_[winner]) {
    score += dist::normalized_fingerprint_distance(f, ref);
  }
  result.dissimilarity = score;
  result.type_index = winner;
  result.type_name = bank_.type_name(winner);
}

std::optional<DeviceIdentifier> DeviceIdentifier::from_parts(
    const IdentifierConfig& config, ClassifierBank bank,
    std::vector<std::vector<fp::Fingerprint>> references) {
  if (references.size() != bank.num_types()) return std::nullopt;
  if (config.fixed_prefix == 0 || config.fixed_prefix > 1024) {
    return std::nullopt;
  }
  IdentifierConfig resolved = config;
  resolved.bank = bank.config();
  DeviceIdentifier identifier(resolved);
  identifier.bank_ = std::move(bank);
  identifier.references_ = std::move(references);
  return identifier;
}

}  // namespace iotsentinel::core
