// The Security Gateway (paper Sect. III-A): the on-premises component that
// monitors traffic, fingerprints new devices, consults the IoT Security
// Service and enforces the returned isolation level through the SDN stack.
//
// One call drives everything: on_frame(bytes, ts) parses the frame, feeds
// the fingerprint extractor, and pushes the packet through the software
// switch. When a device's setup phase completes, the fingerprint is sent
// to the IoTSSP, the verdict converted into an EnforcementRule and
// installed in the controller, and any stale flows of that device flushed.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/device_tracker.hpp"
#include "core/security_service.hpp"
#include "fingerprint/extractor.hpp"
#include "sdn/controller.hpp"
#include "sdn/software_switch.hpp"

namespace iotsentinel::core {

/// A device-identified event for observers/UI.
struct GatewayEvent {
  net::MacAddress device;
  std::string device_type;   // "" when unknown
  sdn::IsolationLevel level = sdn::IsolationLevel::kStrict;
  bool is_new_type = false;
  std::uint64_t at_us = 0;
  /// Version of the hot-swapped model bank (ml::ForestBank) that produced
  /// this verdict; 0 when the gateway serves a fixed model (the serial
  /// gateway, or a ShardedGateway without a model_publisher).
  std::uint64_t model_version = 0;
};

/// Gateway configuration.
struct GatewayConfig {
  fp::ExtractorConfig extractor;
  sdn::ControllerConfig controller;
};

/// Translates an IoTSSP verdict into the enforcement rule to install for
/// `device`. Shared tail of the serial gateway's capture handler and the
/// sharded pipeline's classifier thread: both paths must derive identical
/// rules from identical verdicts.
[[nodiscard]] sdn::EnforcementRule rule_for_verdict(
    const ServiceVerdict& verdict, const net::MacAddress& device,
    std::uint64_t now_us);

/// Builds the observer/UI event for one identification (same sharing
/// contract as `rule_for_verdict`).
[[nodiscard]] GatewayEvent event_for_verdict(const ServiceVerdict& verdict,
                                             const net::MacAddress& device,
                                             std::uint64_t at_us);

/// True when a frame cannot have come from a well-formed device NIC:
/// shorter than an Ethernet header, or bearing a zero or multicast source
/// address. Both gateways count such frames and drop them before they
/// reach the fingerprint extractor — a malformed-frame flood must not be
/// able to mint phantom devices (state bloat) or wedge the pipeline.
[[nodiscard]] bool is_malformed_frame(std::span<const std::uint8_t> frame);

/// The gateway runtime.
class SecurityGateway {
 public:
  /// `service` outlives the gateway (it is the remote IoTSSP).
  explicit SecurityGateway(const IoTSecurityService& service,
                           GatewayConfig config = {});

  /// Observer invoked after each identification + enforcement install.
  void on_device_identified(std::function<void(const GatewayEvent&)> cb) {
    observer_ = std::move(cb);
  }

  /// Ingests one raw frame at capture time `timestamp_us`. Returns the
  /// data-plane verdict for the frame.
  sdn::SwitchResult on_frame(std::span<const std::uint8_t> frame,
                             std::uint64_t timestamp_us);

  /// Advances time without traffic (flushes idle setup captures).
  void advance_time(std::uint64_t now_us);

  /// Departure sweep: forgets every device silent for `idle_us`, removing
  /// its enforcement rule and flushing its installed flows (the flow
  /// table's cookie index makes the flush O(flows of that device)).
  /// Returns the number of devices swept. Call periodically alongside
  /// `advance_time`; the candidate buffer is reused across calls.
  std::size_t expire_departed(std::uint64_t now_us, std::uint64_t idle_us);

  /// Completes all in-progress captures (e.g. at shutdown).
  void finish_pending_captures();

  [[nodiscard]] sdn::Controller& controller() { return controller_; }
  [[nodiscard]] sdn::SoftwareSwitch& data_plane() { return switch_; }
  /// Passive device inventory (IP bindings, hostnames, DNS names,
  /// identification verdicts) for the management UI.
  [[nodiscard]] const DeviceTracker& inventory() const { return tracker_; }
  /// The fingerprint extractor (read-only: state-bloat metrics for the
  /// adversarial scenario reports).
  [[nodiscard]] const fp::SetupCaptureExtractor& extractor() const {
    return extractor_;
  }
  [[nodiscard]] const std::vector<GatewayEvent>& events() const {
    return events_;
  }
  /// Frames rejected by `is_malformed_frame` (counted, dropped early).
  [[nodiscard]] std::uint64_t malformed_frames() const { return malformed_; }
  /// Frames whose data-plane verdict was kDrop (includes malformed).
  [[nodiscard]] std::uint64_t dropped_frames() const { return dropped_; }

 private:
  void handle_capture(const fp::DeviceCapture& capture);

  const IoTSecurityService& service_;
  DeviceTracker tracker_;
  fp::SetupCaptureExtractor extractor_;
  sdn::Controller controller_;
  sdn::SoftwareSwitch switch_;
  std::function<void(const GatewayEvent&)> observer_;
  std::vector<GatewayEvent> events_;
  /// Scratch for expire_departed (capacity reused across sweeps).
  std::vector<net::MacAddress> departed_scratch_;
  std::uint64_t last_ts_us_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace iotsentinel::core
