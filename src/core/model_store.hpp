// File persistence for trained identification models.
//
// The IoTSSP trains its per-type classifiers offline from lab captures
// (Sect. III-B); deployments then load the trained artifact. This module
// provides the on-disk container: a single binary blob holding the
// classifier bank and the stage-2 reference fingerprints.
#pragma once

#include <optional>
#include <string>

#include "core/identifier.hpp"

namespace iotsentinel::core {

/// Serializes a trained identifier to a byte blob.
std::vector<std::uint8_t> serialize_identifier(
    const DeviceIdentifier& identifier);

/// Parses a blob produced by `serialize_identifier`; nullopt on garbage.
std::optional<DeviceIdentifier> deserialize_identifier(
    std::span<const std::uint8_t> blob);

/// Writes the identifier to `path`; false on I/O error.
bool save_identifier_file(const std::string& path,
                          const DeviceIdentifier& identifier);

/// Loads an identifier from `path`; nullopt on I/O error or bad content.
std::optional<DeviceIdentifier> load_identifier_file(const std::string& path);

}  // namespace iotsentinel::core
