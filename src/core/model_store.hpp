// File persistence for trained identification models.
//
// The IoTSSP trains its per-type classifiers offline from lab captures
// (Sect. III-B); deployments then load the trained artifact. This module
// provides the on-disk container: the versioned, corruption-safe IOTS1
// envelope (magic, format version, section table-of-contents, CRC32C per
// section plus a whole-file trailer checksum) wrapping three sections —
// training metadata, the classifier bank, and the stage-2 reference
// fingerprints. docs/FORMAT.md is the normative byte-level spec.
//
// Loaders also accept the legacy v0 blobs ("IID1"-tagged, no envelope)
// written before this format existed, so deployed gateways migrate by
// simply re-saving.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/identifier.hpp"

namespace iotsentinel::core {

/// Why a load was rejected, and where. Every rejection path names the
/// container structure it failed in (`section`) and the absolute byte
/// offset of the failure, so an operator staring at a bad artifact knows
/// whether the file was truncated, bit-flipped, or written by an
/// incompatible version — instead of a bare nullopt.
struct LoadError {
  enum class Kind {
    kNone,                ///< No error (the load succeeded).
    kIoError,             ///< File could not be opened or read.
    kBadMagic,            ///< Neither an IOTS1 container nor a legacy blob.
    kUnsupportedVersion,  ///< IOTS1 envelope from an incompatible version.
    kTruncated,           ///< File shorter than its structures claim.
    kChecksumMismatch,    ///< A CRC32C check failed: corrupt bytes.
    kMalformedToc,        ///< Section table entries are inconsistent.
    kMissingSection,      ///< A required section is absent.
    kSectionParse,        ///< A section's payload failed structural parse.
    kTrailingData,        ///< Bytes remain after a legacy blob's end.
  };

  Kind kind = Kind::kNone;
  /// The failing structure: "envelope", "toc", "trailer", a 4-character
  /// section tag ("META", "BANK", "REFS", …), "IID1" for legacy-blob
  /// parse failures, or "file" for I/O errors. Never empty when
  /// `kind != kNone`.
  std::string section;
  /// Absolute byte offset of the failing structure (0 when unknowable,
  /// e.g. I/O errors).
  std::size_t offset = 0;
};

/// Stable name of an error kind ("checksum-mismatch", …); never null.
[[nodiscard]] const char* to_string(LoadError::Kind kind);

/// One-line human-readable rendering of an error, e.g.
/// "checksum-mismatch in section BANK at offset 132".
[[nodiscard]] std::string describe(const LoadError& error);

/// Result of loading an identifier: either the identifier or a typed
/// error. Mimics std::optional (has_value / bool / * / ->) so callers
/// that only care about success read naturally, while diagnostics-aware
/// callers inspect `error()`.
class LoadResult {
 public:
  /*implicit*/ LoadResult(DeviceIdentifier identifier)
      : identifier_(std::move(identifier)) {}
  /*implicit*/ LoadResult(LoadError error) : error_(std::move(error)) {}

  [[nodiscard]] bool has_value() const { return identifier_.has_value(); }
  [[nodiscard]] explicit operator bool() const { return has_value(); }
  [[nodiscard]] DeviceIdentifier& operator*() { return *identifier_; }
  [[nodiscard]] const DeviceIdentifier& operator*() const {
    return *identifier_;
  }
  [[nodiscard]] DeviceIdentifier* operator->() { return &*identifier_; }
  [[nodiscard]] const DeviceIdentifier* operator->() const {
    return &*identifier_;
  }
  /// The rejection reason; `kind == kNone` iff the load succeeded.
  [[nodiscard]] const LoadError& error() const { return error_; }
  /// Moves the identifier out (valid only after a successful load).
  [[nodiscard]] DeviceIdentifier take() { return std::move(*identifier_); }

 private:
  std::optional<DeviceIdentifier> identifier_;
  LoadError error_;
};

/// Serializes a trained identifier into an IOTS1 container (format
/// version 1, docs/FORMAT.md). Deterministic: the same identifier always
/// produces the same bytes. Never fails.
std::vector<std::uint8_t> serialize_identifier(
    const DeviceIdentifier& identifier);

/// Parses an IOTS1 container or a legacy v0 blob.
///
/// Error contract: never throws and never crashes, whatever `blob`
/// holds; on rejection the returned error names the failing structure
/// (see LoadError). Integrity guarantee for IOTS1 input: any truncation
/// and any single-byte corruption is detected by the envelope checksums
/// before a section parse runs (exercised exhaustively by
/// tests/test_model_store_corruption.cpp). Legacy v0 blobs predate the
/// checksums and get structural validation only.
[[nodiscard]] LoadResult load_identifier(std::span<const std::uint8_t> blob);

/// Compatibility wrapper around `load_identifier` for callers without
/// error-reporting needs; nullopt on any rejection.
std::optional<DeviceIdentifier> deserialize_identifier(
    std::span<const std::uint8_t> blob);

/// Writes the identifier to `path` crash-safely: the container is
/// written to a uniquely named temp file next to `path` (concurrent
/// savers cannot interleave), fsync'd, atomically renamed over `path`,
/// and the parent directory is fsync'd — a crash or power cut at any
/// point leaves either the old file or the new one, never a torn
/// mixture. Returns false on any I/O failure, with the temp file
/// unlinked and the destination untouched — except the final
/// directory-fsync failing, where false is returned but the destination
/// already holds the complete new artifact (its directory entry just
/// isn't yet guaranteed durable; re-save to retry). Note: if `path` is
/// a symlink, the rename replaces the link itself with a regular file
/// (it does not write through to the link's target) — pass the resolved
/// path when a link must keep pointing at shared storage.
bool save_identifier_file(const std::string& path,
                          const DeviceIdentifier& identifier);

/// Loads an identifier (IOTS1 or legacy v0) from `path`. Unreadable
/// files yield `kIoError`; everything else follows `load_identifier`'s
/// error contract.
[[nodiscard]] LoadResult load_identifier_file(const std::string& path);

/// Incremental re-serialization — the hot-swap persistence path
/// (docs/FORMAT.md, "Incremental BANK-record rewrite"). Produces a fresh
/// IOTS1 container for `identifier` from the bytes of a previously saved
/// artifact `base`, re-serializing ONLY type `changed_type`'s forest
/// record inside the BANK section: the other types' records and the
/// whole REFS section are copied verbatim from `base`, META is compared
/// byte-for-byte, and the TOC, section checksums and trailer are
/// recomputed over the result.
///
/// Caller contract: `base` must be an IOTS1 save (by this writer) of
/// this identifier differing at most in type `changed_type`'s forest —
/// same configuration, same type names, same references. Under that
/// contract the output is byte-identical to
/// `serialize_identifier(identifier)` (asserted by
/// tests/test_model_store_corruption.cpp).
///
/// Validation: `base` first passes the full envelope verification of
/// `load_identifier` — any truncation or single-byte corruption is
/// rejected with the same typed error a load would produce. Then META
/// and the BANK structure (config fields, type count, names — located by
/// frame arithmetic, no tree parsing) are cross-checked bit-exactly
/// against `identifier`; a mismatched base yields `kSectionParse` naming
/// the offending section, and a `changed_type` out of range yields
/// `kSectionParse` on BANK. On success `out` holds the new container and
/// the returned error has `kind == kNone`.
[[nodiscard]] LoadError rewrite_bank_record(std::span<const std::uint8_t> base,
                                            const DeviceIdentifier& identifier,
                                            std::size_t changed_type,
                                            std::vector<std::uint8_t>& out);

/// `save_identifier_file`, incremental: reads the artifact at `path` as
/// the rewrite base, splices the one changed BANK record via
/// `rewrite_bank_record`, and atomically replaces the file with the same
/// unique-temp + fsync + rename discipline as the full save (including
/// its directory-fsync caveat). `kIoError` in section "file" when the
/// base cannot be read or the replacement write fails; otherwise
/// `rewrite_bank_record`'s error contract. `kind == kNone` on success.
[[nodiscard]] LoadError save_identifier_file_incremental(
    const std::string& path, const DeviceIdentifier& identifier,
    std::size_t changed_type);

}  // namespace iotsentinel::core
