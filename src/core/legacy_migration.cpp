#include "core/legacy_migration.hpp"

namespace iotsentinel::core {

LegacyMigrator::LegacyMigrator(const IoTSecurityService& service,
                               sdn::Controller& controller,
                               NotificationCenter& notifications,
                               std::uint64_t psk_seed)
    : service_(service),
      controller_(controller),
      notifications_(notifications),
      psk_rng_(psk_seed) {}

std::string LegacyMigrator::mint_psk() {
  // 63-char-max WPA2 passphrase; 32 hex chars of seeded entropy.
  static constexpr char kHex[] = "0123456789abcdef";
  std::string psk;
  psk.reserve(32);
  for (int i = 0; i < 32; ++i) {
    psk.push_back(kHex[psk_rng_.index(16)]);
  }
  return psk;
}

MigrationOutcome LegacyMigrator::migrate(const LegacyDevice& device,
                                         std::uint64_t now_us) {
  MigrationOutcome outcome;
  outcome.mac = device.mac;

  // Identify from the standby fingerprint and assess.
  const ServiceVerdict verdict = service_.assess(device.standby_fingerprint);
  outcome.device_type = verdict.device_type;
  outcome.level = verdict.level;

  if (verdict.level == sdn::IsolationLevel::kTrusted) {
    if (device.supports_wps_rekeying) {
      // Deprecate the shared PSK for this device and issue a fresh
      // device-specific one; it may then join the trusted overlay.
      outcome.issued_psk = mint_psk();
      psks_[device.mac] = outcome.issued_psk;
      outcome.overlay = sdn::Overlay::kTrusted;
    } else {
      // Clean but cannot re-key: stays untrusted until the user manually
      // re-introduces it.
      outcome.level = sdn::IsolationLevel::kStrict;
      outcome.overlay = sdn::Overlay::kUntrusted;
      outcome.needs_manual_reauth = true;
      notifications_.notify({.device = device.mac,
                             .device_type = verdict.device_type,
                             .reason =
                                 NotificationReason::kManualReauthRequired,
                             .message = "Re-introduce this device to move it "
                                        "into the trusted network",
                             .raised_at_us = now_us});
    }
  } else {
    outcome.overlay = sdn::Overlay::kUntrusted;
    if (!verdict.is_known) {
      notifications_.notify(
          {.device = device.mac,
           .device_type = "",
           .reason = NotificationReason::kUnknownDeviceQuarantined,
           .message = "Unknown device-type kept under strict isolation",
           .raised_at_us = now_us});
    }
    if (device.has_uncontrolled_channel &&
        verdict.level == sdn::IsolationLevel::kRestricted) {
      // Vulnerable and equipped with a radio we cannot police: filtering
      // cannot contain exfiltration, the device must go (Sect. III-C.3).
      outcome.flagged_for_removal = true;
      notifications_.notify(
          {.device = device.mac,
           .device_type = verdict.device_type,
           .reason = NotificationReason::kRemoveDevice,
           .message = "Vulnerable device with an uncontrollable radio "
                      "channel — remove it from the network",
           .raised_at_us = now_us});
    }
  }

  // Install the resulting rule in the data plane.
  sdn::EnforcementRule rule;
  rule.device = device.mac;
  rule.level = outcome.level;
  for (const auto& ip : verdict.permitted_endpoints) {
    rule.permitted_ips.insert(ip);
  }
  rule.installed_at_us = now_us;
  controller_.apply_rule(std::move(rule), now_us);

  outcomes_.push_back(outcome);
  return outcome;
}

std::vector<MigrationOutcome> LegacyMigrator::migrate_all(
    const std::vector<LegacyDevice>& devices, std::uint64_t now_us) {
  std::vector<MigrationOutcome> results;
  results.reserve(devices.size());
  for (const auto& device : devices) {
    results.push_back(migrate(device, now_us));
    now_us += 1000;
  }
  return results;
}

std::optional<std::string> LegacyMigrator::psk_of(
    const net::MacAddress& mac) const {
  auto it = psks_.find(mac);
  if (it == psks_.end()) return std::nullopt;
  return it->second;
}

}  // namespace iotsentinel::core
