#include "core/model_store.hpp"

#include <cstdio>
#include <memory>

namespace iotsentinel::core {

std::vector<std::uint8_t> serialize_identifier(
    const DeviceIdentifier& identifier) {
  net::ByteWriter w;
  identifier.save(w);
  return w.take();
}

std::optional<DeviceIdentifier> deserialize_identifier(
    std::span<const std::uint8_t> blob) {
  net::ByteReader r(blob);
  auto identifier = DeviceIdentifier::load(r);
  if (!identifier) return std::nullopt;
  if (!r.empty()) return std::nullopt;  // trailing garbage
  return identifier;
}

bool save_identifier_file(const std::string& path,
                          const DeviceIdentifier& identifier) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!f) return false;
  const auto blob = serialize_identifier(identifier);
  return std::fwrite(blob.data(), 1, blob.size(), f.get()) == blob.size();
}

std::optional<DeviceIdentifier> load_identifier_file(
    const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!f) return std::nullopt;
  std::vector<std::uint8_t> blob;
  std::uint8_t buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    blob.insert(blob.end(), buf, buf + n);
  }
  return deserialize_identifier(blob);
}

}  // namespace iotsentinel::core
