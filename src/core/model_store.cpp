#include "core/model_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <memory>

#include "net/bytes.hpp"
#include "net/crc32.hpp"

namespace iotsentinel::core {

namespace {

using Kind = LoadError::Kind;

// IOTS1 envelope geometry (docs/FORMAT.md is the normative spec).
// The magic follows the PNG recipe: a high-bit byte first (kills
// 7-bit-ASCII transports), the format name, then CR LF (kills newline
// translation).
constexpr std::uint8_t kMagic[8] = {0x89, 'I', 'O', 'T', 'S', '1', '\r', '\n'};
constexpr std::uint16_t kFormatVersion = 1;
constexpr std::size_t kHeaderSize = 16;   // magic + version + flags + count
constexpr std::size_t kTocEntrySize = 24; // tag + offset + length + crc32c
constexpr std::size_t kTrailerSize = 16;  // "IOTE" + file length + crc32c
constexpr std::size_t kMaxSections = 1024;

constexpr char kSectionMeta[] = "META";
constexpr char kSectionBank[] = "BANK";
constexpr char kSectionRefs[] = "REFS";

// ---- fixed-offset big-endian reads (all callers pre-check bounds) ----

std::uint16_t be16(std::span<const std::uint8_t> d, std::size_t at) {
  return static_cast<std::uint16_t>((d[at] << 8) | d[at + 1]);
}

std::uint32_t be32(std::span<const std::uint8_t> d, std::size_t at) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) v = (v << 8) | d[at + i];
  return v;
}

std::uint64_t be64(std::span<const std::uint8_t> d, std::size_t at) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | d[at + i];
  return v;
}

// ---- fingerprint records (shared by the REFS section and legacy blobs) --

void write_fingerprint(net::ByteWriter& w, const fp::Fingerprint& f) {
  w.u32be(static_cast<std::uint32_t>(f.size()));
  for (const auto& packet : f.packets()) {
    for (std::uint32_t value : packet) w.u32be(value);
  }
}

std::optional<fp::Fingerprint> read_fingerprint(net::ByteReader& r) {
  auto n = r.u32be();
  if (!n || *n > 100'000) return std::nullopt;
  fp::Fingerprint f;
  for (std::uint32_t i = 0; i < *n; ++i) {
    fp::FeatureVector v{};
    for (auto& value : v) {
      auto read = r.u32be();
      if (!read) return std::nullopt;
      value = *read;
    }
    f.append(v);
  }
  // Columns were stored post-dedup; append() must not have dropped any.
  if (f.size() != *n) return std::nullopt;
  return f;
}

/// Reads the per-type reference-fingerprint lists (the REFS section
/// payload; the legacy blob embeds the same shape inline). Shared by
/// both loaders so the bounds and record shape cannot diverge. Nullopt
/// on malformation or when the stored type count differs from
/// `expected_types` (the bank's).
std::optional<std::vector<std::vector<fp::Fingerprint>>> read_references(
    net::ByteReader& r, std::size_t expected_types) {
  auto type_count = r.u32be();
  if (!type_count || *type_count != expected_types) return std::nullopt;
  std::vector<std::vector<fp::Fingerprint>> references(*type_count);
  for (std::uint32_t t = 0; t < *type_count; ++t) {
    auto ref_count = r.u32be();
    if (!ref_count || *ref_count > 10'000) return std::nullopt;
    for (std::uint32_t i = 0; i < *ref_count; ++i) {
      auto f = read_fingerprint(r);
      if (!f) return std::nullopt;
      references[t].push_back(std::move(*f));
    }
  }
  return references;
}

// ---- section payload writers (append straight into the container) ----

void write_meta(net::ByteWriter& w, const DeviceIdentifier& identifier) {
  const IdentifierConfig& config = identifier.config();
  w.u32be(static_cast<std::uint32_t>(config.references_per_type));
  w.u32be(static_cast<std::uint32_t>(config.fixed_prefix));
  w.u64be(config.seed);
  w.u32be(static_cast<std::uint32_t>(config.bank.forest.num_trees));
  w.f32be(static_cast<float>(config.bank.negative_ratio));
  w.f32be(static_cast<float>(config.bank.accept_threshold));
  w.u64be(config.bank.seed);
}

void write_refs(net::ByteWriter& w, const DeviceIdentifier& identifier) {
  w.u32be(static_cast<std::uint32_t>(identifier.num_types()));
  for (std::size_t t = 0; t < identifier.num_types(); ++t) {
    const auto& refs = identifier.references(t);
    w.u32be(static_cast<std::uint32_t>(refs.size()));
    for (const auto& f : refs) write_fingerprint(w, f);
  }
}

// Section tags become LoadError::section verbatim; a tag that was never
// printable would make the diagnostics unreadable, so sanitize defensively
// (reachable only for unknown sections written by other producers — our
// own tags are ASCII and TOC bytes are checksum-verified before this).
std::string tag_name(std::span<const std::uint8_t> d, std::size_t at) {
  std::string tag(4, '?');
  for (std::size_t i = 0; i < 4; ++i) {
    if (d[at + i] >= 0x20 && d[at + i] < 0x7f)
      tag[i] = static_cast<char>(d[at + i]);
  }
  return tag;
}

// ---- loaders ----

/// Legacy v0 blobs: bare "IID1" record, no envelope, no checksums.
LoadResult load_legacy(std::span<const std::uint8_t> blob) {
  net::ByteReader r(blob);
  const auto fail = [&](Kind kind) {
    return LoadResult(LoadError{kind, "IID1", r.position()});
  };
  if (!r.read_tag("IID1")) {
    return LoadResult(LoadError{Kind::kBadMagic, "envelope", 0});
  }
  auto refs_per_type = r.u32be();
  auto fixed_prefix = r.u32be();
  auto seed = r.u64be();
  if (!refs_per_type || !fixed_prefix || !seed || *fixed_prefix == 0 ||
      *fixed_prefix > 1024) {
    return fail(Kind::kSectionParse);
  }
  auto bank = ClassifierBank::load_v0(r);
  if (!bank) return fail(Kind::kSectionParse);

  auto references = read_references(r, bank->num_types());
  if (!references) return fail(Kind::kSectionParse);
  if (!r.empty()) return fail(Kind::kTrailingData);

  IdentifierConfig config;
  config.references_per_type = *refs_per_type;
  config.fixed_prefix = *fixed_prefix;
  config.seed = *seed;
  auto identifier = DeviceIdentifier::from_parts(config, std::move(*bank),
                                                 std::move(*references));
  if (!identifier) return fail(Kind::kSectionParse);
  return LoadResult(std::move(*identifier));
}

struct TocEntry {
  std::array<std::uint8_t, 4> raw_tag{};  // dedup/lookup compare these
  std::string tag;                        // sanitized, for diagnostics
  std::size_t offset = 0;
  std::size_t length = 0;
};

/// Envelope verification — steps 1–5 of the IOTS1 load, shared by the
/// loader and the incremental rewriter (whose base artifact must satisfy
/// exactly the integrity guarantees a load demands). Order is part of
/// the design:
///   1. envelope sanity (magic, version),
///   2. trailer structure (tag + recorded file length) — catches every
///      truncation up front,
///   3. TOC checksum, then TOC bounds,
///   4. per-section checksums — a corrupt payload is reported against
///      the section that holds it,
///   5. whole-file checksum — catches what the section CRCs cannot see
///      (the trailer's own bytes, inter-section gaps).
/// A corrupt or truncated artifact is therefore rejected by arithmetic
/// on checksums before a single payload byte is interpreted. On success
/// (`kind == kNone`) `entries` holds the verified TOC.
LoadError verify_envelope(std::span<const std::uint8_t> blob,
                          std::vector<TocEntry>& entries) {
  const auto fail = [](Kind kind, std::string section, std::size_t offset) {
    return LoadError{kind, std::move(section), offset};
  };
  if (blob.size() < kHeaderSize + 4 + kTrailerSize) {
    return fail(Kind::kTruncated, "envelope", blob.size());
  }
  if (!std::equal(std::begin(kMagic), std::end(kMagic), blob.begin())) {
    return fail(Kind::kBadMagic, "envelope", 0);
  }
  if (be16(blob, 8) != kFormatVersion) {
    return fail(Kind::kUnsupportedVersion, "envelope", 8);
  }
  // Flag bits (offset 10) are reserved-ignored for forward compatibility;
  // their bytes are still covered by the TOC checksum below.
  const std::uint32_t section_count = be32(blob, 12);
  if (section_count > kMaxSections) {
    return fail(Kind::kMalformedToc, "toc", 12);
  }
  const std::size_t toc_size = kHeaderSize + section_count * kTocEntrySize + 4;
  if (toc_size + kTrailerSize > blob.size()) {
    return fail(Kind::kTruncated, "toc", blob.size());
  }

  // Trailer structure: a truncated file has lost its trailer, so the tag
  // or the recorded total length no longer lines up with the byte count
  // we actually got.
  const std::size_t trailer_at = blob.size() - kTrailerSize;
  if (!(blob[trailer_at] == 'I' && blob[trailer_at + 1] == 'O' &&
        blob[trailer_at + 2] == 'T' && blob[trailer_at + 3] == 'E')) {
    return fail(Kind::kTruncated, "trailer", trailer_at);
  }
  if (be64(blob, trailer_at + 4) != blob.size()) {
    return fail(Kind::kTruncated, "trailer", trailer_at + 4);
  }

  // TOC checksum (covers the header, so reserved-field corruption is
  // caught here even though the fields are semantically ignored).
  if (net::crc32c(blob.subspan(0, toc_size - 4)) != be32(blob, toc_size - 4)) {
    return fail(Kind::kChecksumMismatch, "toc", toc_size - 4);
  }

  // TOC bounds + per-section checksums.
  entries.clear();
  entries.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::size_t at = kHeaderSize + i * kTocEntrySize;
    TocEntry entry;
    for (std::size_t j = 0; j < 4; ++j) entry.raw_tag[j] = blob[at + j];
    entry.tag = tag_name(blob, at);
    const std::uint64_t offset = be64(blob, at + 4);
    const std::uint64_t length = be64(blob, at + 12);
    if (offset < toc_size || offset + length < offset ||
        offset + length > trailer_at) {
      return fail(Kind::kMalformedToc, entry.tag, at);
    }
    entry.offset = static_cast<std::size_t>(offset);
    entry.length = static_cast<std::size_t>(length);
    for (const TocEntry& seen : entries) {
      // Compare the raw tag bytes: sanitized names may collide for
      // distinct (if exotic) future tags, and a valid file must load.
      if (seen.raw_tag == entry.raw_tag) {
        return fail(Kind::kMalformedToc, entry.tag, at);
      }
    }
    if (net::crc32c(blob.subspan(entry.offset, entry.length)) !=
        be32(blob, at + 20)) {
      return fail(Kind::kChecksumMismatch, entry.tag, entry.offset);
    }
    entries.push_back(std::move(entry));
  }

  // Whole-file checksum: everything up to the stored CRC itself.
  if (net::crc32c(blob.subspan(0, blob.size() - 4)) !=
      be32(blob, blob.size() - 4)) {
    return fail(Kind::kChecksumMismatch, "trailer", blob.size() - 4);
  }
  return LoadError{};
}

const TocEntry* find_section(const std::vector<TocEntry>& entries,
                             const char* tag) {
  for (const TocEntry& entry : entries) {
    if (std::equal(entry.raw_tag.begin(), entry.raw_tag.end(), tag)) {
      return &entry;
    }
  }
  return nullptr;
}

/// IOTS1 container: envelope verification, then structural parse of the
/// section payloads.
LoadResult load_iots1(std::span<const std::uint8_t> blob) {
  const auto fail = [](Kind kind, std::string section, std::size_t offset) {
    return LoadResult(LoadError{kind, std::move(section), offset});
  };
  std::vector<TocEntry> entries;
  if (LoadError err = verify_envelope(blob, entries);
      err.kind != Kind::kNone) {
    return LoadResult(std::move(err));
  }

  const TocEntry* meta = find_section(entries, kSectionMeta);
  const TocEntry* bank_entry = find_section(entries, kSectionBank);
  const TocEntry* refs_entry = find_section(entries, kSectionRefs);
  if (!meta) return fail(Kind::kMissingSection, kSectionMeta, 0);
  if (!bank_entry) return fail(Kind::kMissingSection, kSectionBank, 0);
  if (!refs_entry) return fail(Kind::kMissingSection, kSectionRefs, 0);
  // Unknown sections (future writers) were checksum-verified above and
  // are otherwise skipped.

  // META — fields appended by newer writers land after the known prefix
  // and are ignored.
  net::ByteReader m(blob.subspan(meta->offset, meta->length));
  const auto meta_fail = [&](const net::ByteReader& r) {
    return fail(Kind::kSectionParse, kSectionMeta, meta->offset + r.position());
  };
  auto refs_per_type = m.u32be();
  auto fixed_prefix = m.u32be();
  auto seed = m.u64be();
  auto num_trees = m.u32be();
  auto negative_ratio = m.f32be();
  auto accept_threshold = m.f32be();
  auto bank_seed = m.u64be();
  if (!refs_per_type || !fixed_prefix || !seed || !num_trees ||
      !negative_ratio || !accept_threshold || !bank_seed ||
      *fixed_prefix == 0 || *fixed_prefix > 1024) {
    return meta_fail(m);
  }

  // BANK
  net::ByteReader b(blob.subspan(bank_entry->offset, bank_entry->length));
  auto bank = ClassifierBank::load(b);
  if (!bank) {
    return fail(Kind::kSectionParse, kSectionBank,
                bank_entry->offset + b.position());
  }
  // META duplicates the bank configuration so the artifact's metadata is
  // readable without parsing BANK; the two sources must agree (bit-exact
  // for the floats — both were written from the same values), otherwise
  // the artifact is internally inconsistent.
  const BankConfig& bank_config = bank->config();
  if (*num_trees != bank_config.forest.num_trees ||
      std::bit_cast<std::uint32_t>(*negative_ratio) !=
          std::bit_cast<std::uint32_t>(
              static_cast<float>(bank_config.negative_ratio)) ||
      std::bit_cast<std::uint32_t>(*accept_threshold) !=
          std::bit_cast<std::uint32_t>(
              static_cast<float>(bank_config.accept_threshold)) ||
      *bank_seed != bank_config.seed) {
    return fail(Kind::kSectionParse, kSectionMeta, meta->offset);
  }

  // REFS
  net::ByteReader r(blob.subspan(refs_entry->offset, refs_entry->length));
  auto references = read_references(r, bank->num_types());
  if (!references) {
    return fail(Kind::kSectionParse, kSectionRefs,
                refs_entry->offset + r.position());
  }

  IdentifierConfig config;
  config.references_per_type = *refs_per_type;
  config.fixed_prefix = *fixed_prefix;
  config.seed = *seed;
  // config.bank comes from the bank itself (from_parts resolves it);
  // META's copy was cross-checked against it above.
  auto identifier = DeviceIdentifier::from_parts(config, std::move(*bank),
                                                 std::move(*references));
  if (!identifier) return meta_fail(m);
  return LoadResult(std::move(*identifier));
}

}  // namespace

const char* to_string(LoadError::Kind kind) {
  switch (kind) {
    case Kind::kNone: return "none";
    case Kind::kIoError: return "io-error";
    case Kind::kBadMagic: return "bad-magic";
    case Kind::kUnsupportedVersion: return "unsupported-version";
    case Kind::kTruncated: return "truncated";
    case Kind::kChecksumMismatch: return "checksum-mismatch";
    case Kind::kMalformedToc: return "malformed-toc";
    case Kind::kMissingSection: return "missing-section";
    case Kind::kSectionParse: return "section-parse";
    case Kind::kTrailingData: return "trailing-data";
  }
  return "unknown";
}

std::string describe(const LoadError& error) {
  if (error.kind == Kind::kNone) return "ok";
  return std::string(to_string(error.kind)) + " in section " + error.section +
         " at offset " + std::to_string(error.offset);
}

namespace {

/// Shared IOTS1 emitter: writes the envelope skeleton, lets each emit
/// callback append its section's payload in META/BANK/REFS order, then
/// patches the TOC entries, checksums and trailer. The full writer
/// (`serialize_identifier`) and the incremental rewriter
/// (`rewrite_bank_record`) both run through this, so the envelope byte
/// layout cannot diverge between them — which is what makes the
/// incremental output byte-identical to a full re-save.
///
/// Sections are appended straight into the output buffer — no
/// per-section staging vectors, so peak memory stays ~1x the artifact
/// even for multi-megabyte banks. The TOC's offset/length/CRC fields
/// are zero-filled first and patched once the payload extents are
/// known; the checksums are computed over subspans of the buffer.
template <typename MetaFn, typename BankFn, typename RefsFn>
std::vector<std::uint8_t> build_container(MetaFn&& emit_meta,
                                          BankFn&& emit_bank,
                                          RefsFn&& emit_refs) {
  constexpr const char* kTags[] = {kSectionMeta, kSectionBank, kSectionRefs};
  constexpr std::size_t kSectionCount = 3;
  const std::size_t toc_size = kHeaderSize + kSectionCount * kTocEntrySize + 4;

  // Reserved upfront: the envelope skeleton plus headroom. (Also keeps
  // g++-12's -Wstringop-overflow from mis-analyzing the first fixed-size
  // insert into a freshly allocated buffer.)
  net::ByteWriter w(toc_size + kTrailerSize + 4096);
  w.bytes(std::span<const std::uint8_t>(kMagic));
  w.u16be(kFormatVersion);
  w.u16be(0);  // flags (reserved)
  w.u32be(static_cast<std::uint32_t>(kSectionCount));
  std::size_t entry_at[kSectionCount];
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    entry_at[i] = w.size();
    w.bytes(std::string(kTags[i]));
    w.u64be(0);  // offset, patched below
    w.u64be(0);  // length, patched below
    w.u32be(0);  // payload CRC32C, patched below
  }
  w.u32be(0);  // TOC checksum, patched below

  std::size_t offsets[kSectionCount];
  std::size_t lengths[kSectionCount];
  offsets[0] = w.size();
  emit_meta(w);
  lengths[0] = w.size() - offsets[0];
  offsets[1] = w.size();
  emit_bank(w);
  lengths[1] = w.size() - offsets[1];
  offsets[2] = w.size();
  emit_refs(w);
  lengths[2] = w.size() - offsets[2];

  const auto patch_u64be = [&w](std::size_t at, std::uint64_t v) {
    w.patch_u32be(at, static_cast<std::uint32_t>(v >> 32));
    w.patch_u32be(at + 4, static_cast<std::uint32_t>(v & 0xffffffff));
  };
  const std::span<const std::uint8_t> written(w.data());
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    patch_u64be(entry_at[i] + 4, offsets[i]);
    patch_u64be(entry_at[i] + 12, lengths[i]);
    w.patch_u32be(entry_at[i] + 20,
                  net::crc32c(written.subspan(offsets[i], lengths[i])));
  }
  // After the entries are final: TOC checksum over header + entries.
  w.patch_u32be(toc_size - 4, net::crc32c(written.subspan(0, toc_size - 4)));

  w.bytes(std::string("IOTE"));
  w.u64be(w.size() + 12);          // total file size including the trailer
  w.u32be(net::crc32c(w.data()));  // whole-file checksum
  return w.take();
}

}  // namespace

std::vector<std::uint8_t> serialize_identifier(
    const DeviceIdentifier& identifier) {
  return build_container(
      [&](net::ByteWriter& w) { write_meta(w, identifier); },
      [&](net::ByteWriter& w) { identifier.bank().save(w); },
      [&](net::ByteWriter& w) { write_refs(w, identifier); });
}

LoadError rewrite_bank_record(std::span<const std::uint8_t> base,
                              const DeviceIdentifier& identifier,
                              std::size_t changed_type,
                              std::vector<std::uint8_t>& out) {
  if (changed_type >= identifier.num_types()) {
    return LoadError{Kind::kSectionParse, kSectionBank, 0};
  }
  // The base must satisfy every integrity guarantee a load demands: a
  // flipped or truncated base is rejected here, before any byte of it is
  // copied into the new artifact.
  std::vector<TocEntry> entries;
  if (LoadError err = verify_envelope(base, entries);
      err.kind != Kind::kNone) {
    return err;
  }
  const TocEntry* meta = find_section(entries, kSectionMeta);
  const TocEntry* bank_entry = find_section(entries, kSectionBank);
  const TocEntry* refs_entry = find_section(entries, kSectionRefs);
  if (!meta) return LoadError{Kind::kMissingSection, kSectionMeta, 0};
  if (!bank_entry) return LoadError{Kind::kMissingSection, kSectionBank, 0};
  if (!refs_entry) return LoadError{Kind::kMissingSection, kSectionRefs, 0};

  // META must match the updated identifier byte-for-byte: write_meta is
  // deterministic and a retrain changes no configuration, so any
  // difference means `base` was saved from a different identifier.
  const auto meta_bytes = base.subspan(meta->offset, meta->length);
  net::ByteWriter meta_check;
  write_meta(meta_check, identifier);
  if (meta_check.data().size() != meta_bytes.size() ||
      !std::equal(meta_bytes.begin(), meta_bytes.end(),
                  meta_check.data().begin())) {
    return LoadError{Kind::kSectionParse, kSectionMeta, meta->offset};
  }

  // Walk the BANK frame by length arithmetic alone — no tree parsing —
  // to locate each type's forest record and cross-check the structural
  // prefix (config fields, type count, names) against the identifier.
  const auto bank_bytes = base.subspan(bank_entry->offset, bank_entry->length);
  net::ByteReader r(bank_bytes);
  const auto bank_fail = [&](std::size_t pos) {
    return LoadError{Kind::kSectionParse, kSectionBank,
                     bank_entry->offset + pos};
  };
  if (!r.read_tag("IBK2")) return bank_fail(r.position());
  const auto frame_len = r.u32be();
  if (!frame_len || *frame_len != r.remaining()) return bank_fail(r.position());
  const std::size_t payload_at = r.position();
  const BankConfig& config = identifier.bank().config();
  const auto num_trees = r.u32be();
  const auto neg_ratio = r.f32be();
  const auto threshold = r.f32be();
  const auto seed = r.u64be();
  const auto count = r.u32be();
  if (!num_trees || !neg_ratio || !threshold || !seed || !count) {
    return bank_fail(r.position());
  }
  if (*num_trees != config.forest.num_trees ||
      std::bit_cast<std::uint32_t>(*neg_ratio) !=
          std::bit_cast<std::uint32_t>(
              static_cast<float>(config.negative_ratio)) ||
      std::bit_cast<std::uint32_t>(*threshold) !=
          std::bit_cast<std::uint32_t>(
              static_cast<float>(config.accept_threshold)) ||
      *seed != config.seed || *count != identifier.num_types()) {
    return bank_fail(payload_at);
  }
  std::size_t forest_at = 0;
  std::size_t forest_end = 0;
  for (std::uint32_t t = 0; t < *count; ++t) {
    const auto name_len = r.u32be();
    if (!name_len || *name_len > 4096) return bank_fail(r.position());
    const auto name = r.bytes(*name_len);
    if (!name) return bank_fail(r.position());
    const std::string& expected = identifier.bank().type_name(t);
    if (expected.size() != name->size() ||
        !std::equal(name->begin(), name->end(), expected.begin())) {
      return bank_fail(r.position() - name->size());
    }
    const std::size_t record_at = r.position();
    if (!r.read_tag("IRF2")) return bank_fail(r.position());
    const auto record_len = r.u32be();
    if (!record_len || !r.skip(*record_len)) return bank_fail(r.position());
    if (t == changed_type) {
      forest_at = record_at;
      forest_end = r.position();
    }
  }
  if (!r.empty()) return bank_fail(r.position());

  // Emit through the shared builder: META and REFS verbatim from the
  // base, BANK spliced around the one re-serialized forest record.
  out = build_container(
      [&](net::ByteWriter& w) { w.bytes(meta_bytes); },
      [&](net::ByteWriter& w) {
        w.bytes(std::string("IBK2"));
        const std::size_t length_at = w.size();
        w.u32be(0);  // payload length, patched below
        const std::size_t payload_start = w.size();
        w.bytes(bank_bytes.subspan(payload_at, forest_at - payload_at));
        identifier.bank().forest(changed_type).save(w);
        w.bytes(bank_bytes.subspan(forest_end));
        w.patch_u32be(length_at,
                      static_cast<std::uint32_t>(w.size() - payload_start));
      },
      [&](net::ByteWriter& w) {
        w.bytes(base.subspan(refs_entry->offset, refs_entry->length));
      });
  return LoadError{};
}

LoadResult load_identifier(std::span<const std::uint8_t> blob) {
  if (blob.size() >= 4 && blob[0] == 'I' && blob[1] == 'I' &&
      blob[2] == 'D' && blob[3] == '1') {
    return load_legacy(blob);
  }
  return load_iots1(blob);
}

std::optional<DeviceIdentifier> deserialize_identifier(
    std::span<const std::uint8_t> blob) {
  auto result = load_identifier(blob);
  if (!result) return std::nullopt;
  return result.take();
}

namespace {

/// The crash-safe tail shared by the full and incremental savers: unique
/// temp file, fsync, atomic rename, directory fsync (contract and caveat:
/// save_identifier_file's doc comment).
bool write_blob_atomic(const std::string& path,
                       std::span<const std::uint8_t> blob) {
  // Unique temp name: concurrent savers to the same destination must not
  // interleave writes into a shared temp file and publish a torn blob.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));

  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0 && errno == EEXIST) {
    // Leftover from a crashed earlier process that had our pid; reclaim.
    ::unlink(tmp.c_str());
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  }
  if (fd < 0) return false;
  const auto abort_write = [&] {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  };
  // Re-saving over an existing artifact must not loosen its permissions:
  // an operator's 0600 model file stays 0600 after migration/retraining.
  struct stat existing {};
  if (::stat(path.c_str(), &existing) == 0 &&
      ::fchmod(fd, existing.st_mode & 07777) != 0) {
    return abort_write();
  }
  std::size_t written = 0;
  while (written < blob.size()) {
    const ssize_t n =
        ::write(fd, blob.data() + written, blob.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return abort_write();
    }
    written += static_cast<std::size_t>(n);
  }
  // Data must be durable before the rename publishes it, or a crash
  // could leave a fully-renamed file with unwritten tails.
  if (::fsync(fd) != 0) return abort_write();
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // Open the parent directory BEFORE the rename: every failure up to and
  // including this point leaves the destination untouched.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd < 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::close(dirfd);
    ::unlink(tmp.c_str());
    return false;
  }
  // fsync the parent directory so the rename itself survives a crash.
  // This is the one failure mode that returns false with the destination
  // already replaced (see the header contract): the new artifact is live
  // and internally complete, but its directory entry may not survive a
  // power cut — callers retry by simply saving again.
  const bool dir_synced = ::fsync(dirfd) == 0;
  ::close(dirfd);
  return dir_synced;
}

/// Slurps `path` into `blob`. kIoError ("file") on open/read failure.
LoadError read_file(const std::string& path, std::vector<std::uint8_t>& blob) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!f) return LoadError{Kind::kIoError, "file", 0};
  blob.clear();
  std::uint8_t buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    blob.insert(blob.end(), buf, buf + n);
  }
  if (std::ferror(f.get())) {
    return LoadError{Kind::kIoError, "file", blob.size()};
  }
  return LoadError{};
}

}  // namespace

bool save_identifier_file(const std::string& path,
                          const DeviceIdentifier& identifier) {
  return write_blob_atomic(path, serialize_identifier(identifier));
}

LoadResult load_identifier_file(const std::string& path) {
  std::vector<std::uint8_t> blob;
  if (LoadError err = read_file(path, blob); err.kind != Kind::kNone) {
    return LoadResult(std::move(err));
  }
  return load_identifier(blob);
}

LoadError save_identifier_file_incremental(const std::string& path,
                                           const DeviceIdentifier& identifier,
                                           std::size_t changed_type) {
  std::vector<std::uint8_t> base;
  if (LoadError err = read_file(path, base); err.kind != Kind::kNone) {
    return err;
  }
  std::vector<std::uint8_t> blob;
  if (LoadError err = rewrite_bank_record(base, identifier, changed_type, blob);
      err.kind != Kind::kNone) {
    return err;
  }
  if (!write_blob_atomic(path, blob)) {
    return LoadError{Kind::kIoError, "file", 0};
  }
  return LoadError{};
}

}  // namespace iotsentinel::core
