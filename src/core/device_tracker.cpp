#include "core/device_tracker.hpp"

#include <algorithm>

#include "net/dhcp.hpp"
#include "net/dns.hpp"
#include "net/parser.hpp"

namespace iotsentinel::core {

// Built with plain appends: `"lit" + std::string` temporaries trip a
// g++-12 -O3 -Wrestrict false positive (GCC PR 105651) under -Werror.
std::string TrackedDevice::summary() const {
  std::string out = mac.to_string();
  if (ip) {
    out += ' ';
    out += ip->to_string();
  }
  if (!hostname.empty()) {
    out += " \"";
    out += hostname;
    out += '"';
  }
  if (!device_type.empty()) {
    out += " [";
    out += device_type;
    out += ']';
  }
  if (level) {
    out += " (";
    out += sdn::to_string(*level);
    out += ')';
  }
  out += " pkts=";
  out += std::to_string(packets);
  return out;
}

void DeviceTracker::observe(const net::ParsedPacket& pkt,
                            std::span<const std::uint8_t> frame) {
  if (pkt.src_mac.is_zero() || pkt.src_mac.is_multicast()) return;

  auto [it, inserted] = devices_.try_emplace(pkt.src_mac);
  TrackedDevice& device = it->second;
  if (inserted) {
    device.mac = pkt.src_mac;
    device.first_seen_us = pkt.timestamp_us;
  }
  device.last_seen_us = std::max(device.last_seen_us, pkt.timestamp_us);
  ++device.packets;
  device.bytes += pkt.wire_size;

  // IP binding: prefer a concrete unicast source address.
  if (pkt.src_ip && pkt.src_ip->is_v4()) {
    const auto v4 = pkt.src_ip->v4();
    if (v4.value() != 0 && !v4.is_multicast()) device.ip = v4;
  }

  // Message-content gleaning (needs the raw frame).
  if (frame.empty()) return;
  if (pkt.app.dhcp || pkt.app.bootp) {
    if (auto dhcp = net::parse_dhcp(net::udp_payload_of(frame))) {
      if (!dhcp->hostname.empty()) device.hostname = dhcp->hostname;
      if (!dhcp->vendor_class.empty()) device.vendor_class = dhcp->vendor_class;
      if (dhcp->requested_ip) device.ip = *dhcp->requested_ip;
    }
  } else if (pkt.app.dns || pkt.app.mdns) {
    if (auto dns = net::parse_dns(net::udp_payload_of(frame))) {
      for (const auto& question : dns->questions) {
        if (device.dns_queries.size() >= kMaxDnsNames) break;
        device.dns_queries.insert(question.name);
      }
    }
  }
}

void DeviceTracker::mark_identified(const net::MacAddress& mac,
                                    const std::string& device_type,
                                    sdn::IsolationLevel level) {
  auto it = devices_.find(mac);
  if (it == devices_.end()) {
    TrackedDevice device;
    device.mac = mac;
    it = devices_.emplace(mac, std::move(device)).first;
  }
  it->second.device_type = device_type;
  it->second.level = level;
}

bool DeviceTracker::forget(const net::MacAddress& mac) {
  return devices_.erase(mac) > 0;
}

const TrackedDevice* DeviceTracker::find(const net::MacAddress& mac) const {
  auto it = devices_.find(mac);
  return it == devices_.end() ? nullptr : &it->second;
}

std::vector<const TrackedDevice*> DeviceTracker::all() const {
  std::vector<const TrackedDevice*> out;
  out.reserve(devices_.size());
  for (const auto& [mac, device] : devices_) out.push_back(&device);
  std::sort(out.begin(), out.end(),
            [](const TrackedDevice* a, const TrackedDevice* b) {
              return a->last_seen_us > b->last_seen_us;
            });
  return out;
}

std::vector<net::MacAddress> DeviceTracker::idle_devices(
    std::uint64_t now_us, std::uint64_t idle_us) const {
  std::vector<net::MacAddress> out;
  idle_devices_into(now_us, idle_us, out);
  return out;
}

void DeviceTracker::idle_devices_into(std::uint64_t now_us,
                                      std::uint64_t idle_us,
                                      std::vector<net::MacAddress>& out) const {
  out.clear();
  for (const auto& [mac, device] : devices_) {
    if (now_us > device.last_seen_us &&
        now_us - device.last_seen_us >= idle_us) {
      out.push_back(mac);
    }
  }
}

}  // namespace iotsentinel::core
