#include "core/gateway_pool.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>

#include "net/parser.hpp"

namespace iotsentinel::core {
namespace {

/// Idle backoff shared by the ingest (ring-full), worker (nothing to do)
/// and classifier (verdict-ring-full) spin sites: stay polite immediately
/// (these loops always make progress through another thread), and back
/// off to a real sleep when the peer has been quiet for a while — on
/// oversubscribed machines a pure yield storm starves the thread that
/// would unblock us.
class Backoff {
 public:
  void wait() {
    if (++idle_polls_ < kYieldPolls) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  void reset() { idle_polls_ = 0; }

 private:
  static constexpr std::size_t kYieldPolls = 256;
  std::size_t idle_polls_ = 0;
};

/// Source MAC straight from the raw Ethernet header (bytes 6..11). The
/// threshold matches parse_ethernet_frame's 14-byte minimum: any frame
/// the parser would reject (leaving src_mac zero) routes deterministically
/// to the zero-MAC shard, keeping routing and parsed-MAC views identical.
net::MacAddress src_mac_of_frame(std::span<const std::uint8_t> frame) {
  if (frame.size() < 14) return net::MacAddress{};
  return net::MacAddress({frame[6], frame[7], frame[8], frame[9], frame[10],
                          frame[11]});
}

}  // namespace

ShardedGateway::ShardedGateway(const IoTSecurityService& service,
                               ShardedGatewayConfig config)
    : service_(service), config_(config), controller_(config.controller) {
  config_.num_shards = std::max<std::size_t>(config_.num_shards, 1);
  config_.classify_batch_max =
      std::max<std::size_t>(config_.classify_batch_max, 1);

  // Control-plane metric bindings (names: docs/OBSERVABILITY.md).
  m_packet_ins_ = &registry_.counter("controller.packet_ins");
  m_drops_ = &registry_.counter("controller.drops");
  m_neg_hits_ = &registry_.counter("controller.negative_cache_hits");
  m_installs_ = &registry_.counter("controller.rule_installs");
  m_invalidations_ = &registry_.counter("controller.invalidations_sent");
  m_assessments_ = &registry_.counter("service.assessments");
  m_fingerprints_scored_ = &registry_.counter("classifier.fingerprints_scored");
  m_batch_latency_ = &registry_.histogram("classifier.batch_latency_us");
  telemetry::Histogram& fanout_lag =
      registry_.histogram("sdn.invalidation_fanout_lag_us");
  if (config_.model_publisher != nullptr) {
    // Surface the publisher's swap telemetry through this gateway's
    // registry (names: docs/OBSERVABILITY.md). Bound before the threads
    // spawn, like every other binding here.
    ml::ForestBankPublisher::Telemetry hotswap;
    hotswap.retrains = &registry_.counter("hotswap.retrains_completed");
    hotswap.bank_epoch = &registry_.gauge("hotswap.bank_epoch");
    hotswap.swap_latency_us = &registry_.histogram("hotswap.swap_latency_us");
    hotswap.retired_banks = &registry_.gauge("hotswap.retired_banks");
    config_.model_publisher->bind_telemetry(hotswap);
  }

  shards_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(config_.ring_capacity,
                                              config_.extractor, controller_,
                                              config_.switch_cache_entries));
    Shard& shard = *shards_.back();
    shard.index = i;
    if (config_.switch_cache_enabled) {
      // Federation: the switch consults its local cache on table misses;
      // every controller rule change fans an invalidation out to it.
      // Attach before the threads spawn so the registry is never mutated
      // concurrently with traffic.
      shard.cache.bind_lag_histogram(&fanout_lag);
      controller_.attach_cache(&shard.cache);
      shard.data_plane.set_rule_cache(&shard.cache);
    }
    const std::string prefix = "gateway.shard" + std::to_string(i) + ".";
    shard.metrics.frames = &registry_.counter(prefix + "frames");
    shard.metrics.ring_high_water =
        &registry_.gauge(prefix + "ring_high_water");
    shard.metrics.tier1_hits =
        &registry_.counter(prefix + "flowtable.tier1_hits");
    shard.metrics.tier2_scans =
        &registry_.counter(prefix + "flowtable.tier2_scans");
    shard.metrics.live_flows = &registry_.gauge(prefix + "flowtable.live_flows");
    shard.metrics.deadline_heap =
        &registry_.gauge(prefix + "flowtable.deadline_heap");
    shard.metrics.fast_path = &registry_.counter(prefix + "switch.fast_path");
    shard.metrics.cached_path =
        &registry_.counter(prefix + "switch.cached_path");
    shard.metrics.slow_path = &registry_.counter(prefix + "switch.slow_path");
    shard.metrics.cache_hits = &registry_.counter(prefix + "rule_cache.hits");
    shard.metrics.cache_misses =
        &registry_.counter(prefix + "rule_cache.misses");
    shard.metrics.cache_size = &registry_.gauge(prefix + "rule_cache.size");
    // Completion callback runs on the shard's worker thread.
    shard.extractor.on_capture_complete([this](const fp::DeviceCapture& c) {
      // Deep-copy the fingerprint before taking the lock: the submission
      // mutex is contended by every worker and the classifier, and must
      // not be held across a heap-allocating copy.
      PendingCapture pending{c.mac, c.fingerprint, c.end_us};
      {
        std::lock_guard<std::mutex> lock(submission_mu_);
        submissions_.push_back(std::move(pending));
      }
      submission_cv_.notify_one();
    });
  }
  for (auto& shard : shards_) {
    shard->thread =
        std::thread([this, &s = *shard] { worker_loop(s); });
  }
  classifier_thread_ = std::thread([this] { classifier_loop(); });
}

ShardedGateway::~ShardedGateway() { finish(); }

void ShardedGateway::submit(std::span<const std::uint8_t> frame,
                            std::uint64_t timestamp_us) {
  assert(!finished_);
  Shard& shard = *shards_[shard_of(src_mac_of_frame(frame))];
  FrameRef ref;
  ref.timestamp_us = timestamp_us;
  ref.data = frame.data();
  ref.size = static_cast<std::uint32_t>(frame.size());
  enqueue(shard, std::move(ref));
}

void ShardedGateway::submit_owned(net::Bytes frame,
                                  std::uint64_t timestamp_us) {
  assert(!finished_);
  Shard& shard = *shards_[shard_of(src_mac_of_frame(frame))];
  FrameRef ref;
  ref.timestamp_us = timestamp_us;
  ref.owned = std::move(frame);
  ref.data = ref.owned.data();
  ref.size = static_cast<std::uint32_t>(ref.owned.size());
  enqueue(shard, std::move(ref));
}

void ShardedGateway::enqueue(Shard& shard, FrameRef ref) {
  Backoff backoff;
  bool stalled = false;
  while (!shard.frames.try_push(std::move(ref))) {
    stalled = true;
    backoff.wait();
  }
  if (stalled) {
    shard.submit_stalls.fetch_add(1, std::memory_order_relaxed);
  }
  // Single ingest thread: a plain read-modify-write max is race-free.
  const auto occupancy = static_cast<std::uint64_t>(shard.frames.size());
  if (occupancy > shard.ring_high_water.load(std::memory_order_relaxed)) {
    shard.ring_high_water.store(occupancy, std::memory_order_relaxed);
  }
}

ShardedGateway::Stats ShardedGateway::stats() const {
  Stats stats;
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.frames_processed = shard->packets.load(std::memory_order_relaxed);
    s.submit_stalls = shard->submit_stalls.load(std::memory_order_relaxed);
    s.ring_high_water = shard->ring_high_water.load(std::memory_order_relaxed);
    s.ring_capacity = shard->frames.capacity();
    s.flows_expired = shard->flows_expired.load(std::memory_order_relaxed);
    s.malformed_frames = shard->malformed.load(std::memory_order_relaxed);
    s.dropped_frames = shard->dropped.load(std::memory_order_relaxed);
    s.devices_expired = shard->devices_expired.load(std::memory_order_relaxed);
    s.extractor_peak_active =
        shard->extractor_peak.load(std::memory_order_relaxed);
    stats.frames_processed += s.frames_processed;
    stats.submit_stalls += s.submit_stalls;
    stats.flows_expired += s.flows_expired;
    stats.malformed_frames += s.malformed_frames;
    stats.dropped_frames += s.dropped_frames;
    stats.devices_expired += s.devices_expired;
    stats.extractor_peak_active += s.extractor_peak_active;
    stats.shards.push_back(s);
  }
  return stats;
}

void ShardedGateway::expire_departed(std::uint64_t now_us,
                                     std::uint64_t idle_us) {
  assert(!finished_);
  for (auto& shard : shards_) {
    FrameRef op;
    op.timestamp_us = now_us;
    op.op = IngestOp::kExpireDeparted;
    op.idle_us = idle_us;
    enqueue(*shard, std::move(op));
  }
}

void ShardedGateway::finish() {
  if (finished_) return;
  finished_ = true;
  ingest_done_.store(true, std::memory_order_release);
  submission_cv_.notify_all();
  classifier_thread_.join();
  for (auto& shard : shards_) shard->thread.join();
  // All threads joined: one last publish makes every aggregate exact.
  publish_control_plane_telemetry();
}

std::vector<GatewayEvent> ShardedGateway::events() const {
  std::lock_guard<std::mutex> lock(events_mu_);
  return events_;
}

void ShardedGateway::dispatch(Shard& shard, const FrameRef& frame) {
  if (frame.op == IngestOp::kExpireDeparted) {
    handle_expire(shard, frame.timestamp_us, frame.idle_us);
  } else {
    process_frame(shard, frame);
  }
}

void ShardedGateway::process_frame(Shard& shard, const FrameRef& frame) {
  const std::span<const std::uint8_t> bytes(frame.data, frame.size);
  shard.packets.fetch_add(1, std::memory_order_relaxed);
  if (config_.record_frame_log) {
    shard.frame_log.push_back({frame.timestamp_us, src_mac_of_frame(bytes)});
  }
  if (is_malformed_frame(bytes)) {
    // Counted and dropped before the extractor/tracker see it: a
    // malformed-frame flood must not mint phantom device state.
    shard.malformed.fetch_add(1, std::memory_order_relaxed);
    shard.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const net::ParsedPacket pkt =
      net::parse_ethernet_frame(bytes, frame.timestamp_us);
  shard.tracker.observe(pkt, bytes);
  shard.extractor.observe(pkt);
  const sdn::SwitchResult result =
      shard.data_plane.process(pkt, frame.timestamp_us);
  if (result.action == sdn::FlowAction::kDrop) {
    shard.dropped.fetch_add(1, std::memory_order_relaxed);
  }
  shard.extractor_peak.store(shard.extractor.peak_active_devices(),
                             std::memory_order_relaxed);
  // The serial gateway expires idle flows on every frame; here a strided
  // sweep keeps the amortised cost negligible while still bounding the
  // table by the live-flow population on long streaming runs.
  if (++shard.frames_since_expiry >= kExpiryStride) {
    shard.frames_since_expiry = 0;
    const std::size_t removed =
        shard.data_plane.expire_flows(frame.timestamp_us);
    if (removed > 0) {
      shard.flows_expired.fetch_add(removed, std::memory_order_relaxed);
    }
    // Piggyback the telemetry publish on the same stride: the shard's
    // plain single-writer counters become registry-visible here, so live
    // readers lag the hot path by at most kExpiryStride frames.
    publish_shard_telemetry(shard);
  }
}

void ShardedGateway::publish_shard_telemetry(Shard& shard) {
  const sdn::SoftwareSwitch& dp = shard.data_plane;
  const sdn::FlowTable& table = dp.table();
  const ShardTelemetry& m = shard.metrics;
  m.frames->publish(shard.packets.load(std::memory_order_relaxed));
  m.ring_high_water->set_max(
      shard.ring_high_water.load(std::memory_order_relaxed));
  m.tier1_hits->publish(table.tier1_hits());
  m.tier2_scans->publish(table.tier2_scans());
  m.live_flows->set(table.size());
  m.deadline_heap->set(table.deadline_heap_size());
  m.fast_path->publish(dp.fast_path_packets());
  m.cached_path->publish(dp.cached_path_packets());
  m.slow_path->publish(dp.slow_path_packets());
  m.cache_hits->publish(shard.cache.hits());
  m.cache_misses->publish(shard.cache.misses());
  m.cache_size->set(shard.cache.size());
}

void ShardedGateway::publish_control_plane_telemetry() {
  m_packet_ins_->publish(controller_.packet_ins());
  m_drops_->publish(controller_.drops());
  m_neg_hits_->publish(controller_.negative_cache_hits());
  m_installs_->publish(controller_.rule_installs());
  m_invalidations_->publish(controller_.invalidations_sent());
  m_assessments_->publish(service_.assessments());
}

void ShardedGateway::handle_expire(Shard& shard, std::uint64_t now_us,
                                   std::uint64_t idle_us) {
  // Post a barrier behind every capture this shard already submitted, so
  // the classifier's answers to pre-sweep captures are applied (and then
  // swept if their device is idle) before any device state is forgotten.
  // Without the barrier a straggler verdict could resurrect a rule for a
  // device we just expired.
  {
    std::lock_guard<std::mutex> lock(submission_mu_);
    PendingCapture barrier;
    barrier.barrier_shard = static_cast<int>(shard.index);
    submissions_.push_back(std::move(barrier));
  }
  submission_cv_.notify_one();
  // Drain verdicts until the classifier echoes the barrier through this
  // shard's verdict ring (FIFO after everything submitted before it).
  Backoff backoff;
  VerdictMsg msg;
  for (;;) {
    if (!shard.verdicts.try_pop(msg)) {
      backoff.wait();
      continue;
    }
    if (msg.is_barrier) break;
    apply_verdict_msg(shard, msg);
    backoff.reset();
  }
  // The sweep proper — the serial gateway's expire_departed, shard-local.
  shard.tracker.idle_devices_into(now_us, idle_us, shard.departed_scratch);
  for (const net::MacAddress& mac : shard.departed_scratch) {
    controller_.remove_device(mac, now_us);
    shard.data_plane.flush_device(mac);
    // Discard any half-open capture and the fingerprinted marker too: a
    // departed device that rejoins (or an attacker reusing its MAC) must
    // be fingerprinted and identified afresh, never inherit identity.
    shard.extractor.forget(mac);
    shard.tracker.forget(mac);
  }
  shard.devices_expired.fetch_add(shard.departed_scratch.size(),
                                  std::memory_order_relaxed);
}

bool ShardedGateway::drain_verdicts(Shard& shard) {
  bool did_work = false;
  VerdictMsg msg;
  while (shard.verdicts.try_pop(msg)) {
    if (!msg.is_barrier) apply_verdict_msg(shard, msg);
    did_work = true;
  }
  return did_work;
}

void ShardedGateway::apply_verdict_msg(Shard& shard, VerdictMsg& msg) {
  // Single controller lock (inside apply_rule): the rule is globally
  // visible to every shard's packet-in path from here on. Installing it
  // here — on the owning worker, between two of the device's frames —
  // rather than on the classifier thread means install + flush + mark
  // are atomic with respect to the device's traffic, so no fast-path
  // entry admitted under the provisional policy can outlive the rule it
  // contradicts (the enforcement auditor's zero-violation guarantee).
  controller_.apply_rule(std::move(msg.rule), msg.at_us);
  // Flows admitted under the provisional (no-rule) policy must be
  // re-evaluated under the device's real isolation level.
  shard.data_plane.flush_device(msg.mac);
  shard.tracker.mark_identified(msg.mac, msg.device_type, msg.level);
}

void ShardedGateway::worker_loop(Shard& shard) {
  Backoff backoff;
  bool flushed = false;
  FrameRef frame;
  for (;;) {
    bool did_work = drain_verdicts(shard);
    // One frame per iteration so verdict messages are interleaved
    // promptly and the classifier's push never waits long.
    if (shard.frames.try_pop(frame)) {
      dispatch(shard, frame);
      did_work = true;
    }
    if (did_work) {
      backoff.reset();
      continue;
    }

    if (ingest_done_.load(std::memory_order_acquire)) {
      if (!flushed) {
        // The empty-ring check above may have raced with the last
        // submits; the acquire on ingest_done_ makes them visible now,
        // so one more drain is definitive.
        while (shard.frames.try_pop(frame)) dispatch(shard, frame);
        shard.extractor.flush_all();
        flushed = true;
        {
          std::lock_guard<std::mutex> lock(submission_mu_);
          ++flushed_workers_;
        }
        submission_cv_.notify_all();
        continue;
      }
      if (classifier_done_.load(std::memory_order_acquire)) {
        // Same pattern: drain verdicts that raced with the flag.
        drain_verdicts(shard);
        // Final publish: after this the registry holds the shard's exact
        // end-of-run numbers.
        publish_shard_telemetry(shard);
        return;
      }
    }
    backoff.wait();
  }
}

void ShardedGateway::apply_verdict(const PendingCapture& capture,
                                   const ServiceVerdict& verdict) {
  // All post-verdict effects — rule install included — go back to the
  // owning worker, which is the only thread allowed to touch that
  // shard's tracker and flow table (see apply_verdict_msg for why the
  // install rides along).
  Shard& owner = *shards_[shard_of(capture.mac)];
  VerdictMsg msg;
  msg.mac = capture.mac;
  msg.device_type = verdict.device_type;
  msg.level = verdict.level;
  msg.rule = rule_for_verdict(verdict, capture.mac, capture.end_us);
  msg.at_us = capture.end_us;
  Backoff backoff;
  while (!owner.verdicts.try_push(std::move(msg))) backoff.wait();

  // Track each device's identified type (classifier-thread-only state):
  // a later model swap of that type must invalidate this device's cached
  // flow-class decisions. Unknown devices carry no type.
  if (verdict.identification.type_index) {
    device_type_by_mac_[capture.mac] = *verdict.identification.type_index;
  } else {
    device_type_by_mac_.erase(capture.mac);
  }

  GatewayEvent event =
      event_for_verdict(verdict, capture.mac, capture.end_us);
  event.model_version = classifier_model_version_;
  {
    std::lock_guard<std::mutex> lock(events_mu_);
    events_.push_back(event);
  }
  if (observer_) observer_(event);
}

void ShardedGateway::handle_model_swap(const ml::ForestBank& bank,
                                       std::uint64_t prev_version,
                                       std::uint64_t now_us) {
  // Cached flow-class decisions of devices identified by the replaced
  // classifier were derived under a model that no longer serves; flush
  // them so each affected device's next table miss re-consults the
  // controller. When exactly one bank was published since the last batch
  // its retrained_type pins the blast radius to that type's devices;
  // otherwise (several swaps coalesced into one epoch jump) every
  // identified device is invalidated — correct, just wider.
  const bool single_known_type =
      bank.version == prev_version + 1 &&
      bank.retrained_type != ml::ForestBank::kNoRetrainedType;
  swap_scratch_.clear();
  for (const auto& [mac, type] : device_type_by_mac_) {
    if (!single_known_type || type == bank.retrained_type) {
      swap_scratch_.push_back(mac);
    }
  }
  controller_.invalidate_model_swap(swap_scratch_, now_us);
}

void ShardedGateway::classifier_loop() {
  ml::ForestBankPublisher* publisher = config_.model_publisher;
  std::optional<ml::ForestBankPublisher::ReaderHandle> reader;
  std::uint64_t last_version = 0;
  if (publisher != nullptr) {
    reader.emplace(publisher->register_reader());
    last_version = publisher->version();
    classifier_model_version_ = last_version;
  }
  std::vector<PendingCapture> batch;
  std::vector<int> barriers;  // shards whose barrier precedes this batch
  std::vector<const fp::Fingerprint*> fingerprints;
  std::vector<ServiceVerdict> verdicts;  // buffers reused across batches
  for (;;) {
    batch.clear();
    barriers.clear();
    {
      std::unique_lock<std::mutex> lock(submission_mu_);
      submission_cv_.wait(lock, [this] {
        return !submissions_.empty() || flushed_workers_ == shards_.size();
      });
      // Queue order must be preserved end to end: leading barriers are
      // echoed before this round's verdicts, and a barrier *behind*
      // captures ends batch collection (it is popped next round, after
      // those verdicts were pushed to the rings).
      while (!submissions_.empty() &&
             submissions_.front().barrier_shard >= 0) {
        barriers.push_back(submissions_.front().barrier_shard);
        submissions_.pop_front();
      }
      while (!submissions_.empty() &&
             submissions_.front().barrier_shard < 0 &&
             batch.size() < config_.classify_batch_max) {
        batch.push_back(std::move(submissions_.front()));
        submissions_.pop_front();
      }
      if (batch.empty() && barriers.empty() &&
          flushed_workers_ == shards_.size()) {
        break;
      }
    }
    for (const int shard_idx : barriers) {
      Shard& owner = *shards_[static_cast<std::size_t>(shard_idx)];
      VerdictMsg echo;
      echo.is_barrier = true;
      Backoff backoff;
      while (!owner.verdicts.try_push(std::move(echo))) backoff.wait();
    }
    if (batch.empty()) continue;

    fingerprints.clear();
    for (const PendingCapture& capture : batch) {
      fingerprints.push_back(&capture.fingerprint);
    }
    // Wall-clock (not virtual-time) classification latency: this is the
    // real compute cost of one IoTSSP batch round. The bank acquire is
    // timed too — it is part of the serving cost a hot swap must not
    // inflate (the bench_retrain acceptance number).
    const auto t0 = std::chrono::steady_clock::now();
    if (publisher != nullptr) {
      const ml::ForestBankPublisher::BankRef bank = publisher->acquire(*reader);
      classifier_model_version_ = bank->version;
      if (bank->version != last_version) {
        handle_model_swap(*bank, last_version, batch.front().end_us);
        last_version = bank->version;
      }
      service_.assess_batch_with(bank->engines, fingerprints, verdicts);
    } else {
      service_.assess_batch(fingerprints, verdicts);
    }
    const auto t1 = std::chrono::steady_clock::now();
    m_batch_latency_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count()));
    m_fingerprints_scored_->add(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      apply_verdict(batch[i], verdicts[i]);
    }
    publish_control_plane_telemetry();
  }
  classifier_done_.store(true, std::memory_order_release);
}

}  // namespace iotsentinel::core
