#include "core/evaluation.hpp"

#include "ml/dataset.hpp"
#include "ml/rng.hpp"

namespace iotsentinel::core {

CvOutcome cross_validate(
    const std::vector<std::string>& type_names,
    const std::vector<std::vector<fp::Fingerprint>>& by_type,
    const CvConfig& config) {
  const std::size_t num_types = type_names.size();

  // Flatten the corpus into (fingerprint, label) pairs for fold splitting.
  std::vector<const fp::Fingerprint*> samples;
  std::vector<int> labels;
  for (std::size_t t = 0; t < num_types; ++t) {
    for (const auto& f : by_type[t]) {
      samples.push_back(&f);
      labels.push_back(static_cast<int>(t));
    }
  }

  CvOutcome outcome;
  outcome.confusion = ml::ConfusionMatrix(num_types);
  std::uint64_t tested = 0;
  std::uint64_t needed_discrimination = 0;
  std::uint64_t total_distance_computations = 0;

  ml::Rng rng(config.seed);
  // One result reused across every identification: candidate/type-name
  // buffers keep their capacity instead of reallocating per test row.
  IdentificationResult result;
  for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
    const auto folds = ml::stratified_k_fold(labels, config.folds, rng);
    for (const auto& fold : folds) {
      // Rebuild the per-type training pools from the fold's train rows.
      std::vector<std::vector<fp::Fingerprint>> train_by_type(num_types);
      for (std::size_t idx : fold.train) {
        train_by_type[static_cast<std::size_t>(labels[idx])].push_back(
            *samples[idx]);
      }

      IdentifierConfig id_config = config.identifier;
      // Vary training randomness across folds deterministically.
      id_config.bank.seed = rng.next_u64();
      id_config.seed = rng.next_u64();
      DeviceIdentifier identifier(id_config);
      identifier.train(type_names, train_by_type);

      for (std::size_t idx : fold.test) {
        const auto actual = static_cast<std::size_t>(labels[idx]);
        identifier.identify_into(*samples[idx], result);
        ++tested;
        if (result.used_discrimination) {
          ++needed_discrimination;
          total_distance_computations += result.distance_computations;
        }
        if (result.type_index) {
          outcome.confusion.record(actual, *result.type_index);
        } else {
          ++outcome.rejected;
        }
      }
    }
  }

  outcome.per_type_accuracy.resize(num_types);
  std::uint64_t correct = 0;
  for (std::size_t t = 0; t < num_types; ++t) {
    outcome.per_type_accuracy[t] = outcome.confusion.class_accuracy(t);
    correct += outcome.confusion.at(t, t);
  }
  outcome.global_accuracy =
      tested ? static_cast<double>(correct) / static_cast<double>(tested) : 0.0;
  outcome.discrimination_fraction =
      tested ? static_cast<double>(needed_discrimination) /
                   static_cast<double>(tested)
             : 0.0;
  outcome.mean_distance_computations =
      tested ? static_cast<double>(total_distance_computations) /
                   static_cast<double>(tested)
             : 0.0;
  return outcome;
}

}  // namespace iotsentinel::core
