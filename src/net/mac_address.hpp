// 48-bit IEEE 802 MAC address value type.
//
// IoT Sentinel keys both fingerprint extraction ("a new device identified by
// a newly observed MAC address") and enforcement rules (Fig. 2) on MAC
// addresses, so this type is used pervasively as a map key.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/hash_mix.hpp"

namespace iotsentinel::net {

/// A 48-bit MAC address. Trivially copyable, totally ordered, hashable.
class MacAddress {
 public:
  /// The all-zero address (used as "unset").
  constexpr MacAddress() = default;

  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  /// Builds an address from its 6 octets in transmission order.
  static constexpr MacAddress of(std::uint8_t a, std::uint8_t b,
                                 std::uint8_t c, std::uint8_t d,
                                 std::uint8_t e, std::uint8_t f) {
    return MacAddress(std::array<std::uint8_t, 6>{a, b, c, d, e, f});
  }

  /// Parses "aa:bb:cc:dd:ee:ff" or "AA-BB-CC-DD-EE-FF".
  static std::optional<MacAddress> parse(std::string_view text);

  /// The broadcast address ff:ff:ff:ff:ff:ff.
  static constexpr MacAddress broadcast() {
    return of(0xff, 0xff, 0xff, 0xff, 0xff, 0xff);
  }

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& octets() const {
    return octets_;
  }

  /// True for ff:ff:ff:ff:ff:ff.
  [[nodiscard]] bool is_broadcast() const { return *this == broadcast(); }

  /// True when the group bit (LSB of first octet) is set: multicast or
  /// broadcast destination.
  [[nodiscard]] bool is_multicast() const { return (octets_[0] & 0x01) != 0; }

  /// True for 00:00:00:00:00:00.
  [[nodiscard]] bool is_zero() const { return *this == MacAddress(); }

  /// Canonical lower-case colon-separated form, e.g. "13:73:74:7e:a9:c2".
  [[nodiscard]] std::string to_string() const;

  /// Enforcement-rule display form used by the paper's Fig. 2,
  /// e.g. "13-73-74-7E-A9-C2".
  [[nodiscard]] std::string to_rule_string() const;

  /// Packs the address into the low 48 bits of a u64 (stable hash input).
  [[nodiscard]] constexpr std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (auto o : octets_) v = (v << 8) | o;
    return v;
  }

  friend constexpr auto operator<=>(const MacAddress&,
                                    const MacAddress&) = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

}  // namespace iotsentinel::net

template <>
struct std::hash<iotsentinel::net::MacAddress> {
  std::size_t operator()(const iotsentinel::net::MacAddress& m) const noexcept {
    // SplitMix64 finalizer over the packed 48-bit value: cheap and well
    // distributed for use in unordered_map rule caches.
    return static_cast<std::size_t>(
        iotsentinel::net::mix64(m.to_u64() + 0x9e3779b97f4a7c15ULL));
  }
};
