#include "net/crc32.hpp"

#include <array>

namespace iotsentinel::net {

namespace {

// Reflected CRC32C polynomial (bit-reversed 0x1EDC6F41).
constexpr std::uint32_t kPolynomial = 0x82f63b78u;

// Four 256-entry tables (slicing-by-4): table[0] is the classic
// byte-at-a-time table, table[k][b] extends a byte k positions deeper so
// the hot loop folds four input bytes per 32-bit register update.
constexpr std::array<std::array<std::uint32_t, 256>, 4> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 4> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (std::size_t k = 1; k < 4; ++k) {
      tables[k][i] = (tables[k - 1][i] >> 8) ^ tables[0][tables[k - 1][i] & 0xff];
    }
  }
  return tables;
}

constexpr auto kTables = make_tables();

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  std::size_t i = 0;
  for (; i + 4 <= data.size(); i += 4) {
    crc ^= static_cast<std::uint32_t>(data[i]) |
           (static_cast<std::uint32_t>(data[i + 1]) << 8) |
           (static_cast<std::uint32_t>(data[i + 2]) << 16) |
           (static_cast<std::uint32_t>(data[i + 3]) << 24);
    crc = kTables[3][crc & 0xff] ^ kTables[2][(crc >> 8) & 0xff] ^
          kTables[1][(crc >> 16) & 0xff] ^ kTables[0][crc >> 24];
  }
  for (; i < data.size(); ++i) {
    crc = (crc >> 8) ^ kTables[0][(crc ^ data[i]) & 0xff];
  }
  return ~crc;
}

}  // namespace iotsentinel::net
