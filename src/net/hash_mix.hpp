// Shared 64-bit hash finalizer.
//
// One definition of the SplitMix64 finalizer for every site that needs a
// cheap, well-distributed 64-bit mix (MAC-address hashing, flow-table
// micro-flow keys, PRNG seeding) — the constants must stay in lock-step
// across those sites, so they live here once.
#pragma once

#include <cstdint>

namespace iotsentinel::net {

/// SplitMix64 finalizer (Steele/Lea/Flood constants).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace iotsentinel::net
