#include "net/pcap.hpp"

#include <cstdio>
#include <memory>

#include "net/bytes.hpp"

namespace iotsentinel::net {
namespace {

constexpr std::uint32_t kMagicUsLe = 0xa1b2c3d4;   // written LE, read as LE
constexpr std::uint32_t kMagicUsBe = 0xd4c3b2a1;   // file is big-endian
constexpr std::uint32_t kMagicNsLe = 0xa1b23c4d;
constexpr std::uint32_t kMagicNsBe = 0x4d3cb2a1;

struct Endian {
  bool big = false;
  bool nanos = false;
};

std::optional<std::uint32_t> read_u32(ByteReader& r, bool big) {
  return big ? r.u32be() : r.u32le();
}

}  // namespace

PcapParseResult parse_pcap(std::span<const std::uint8_t> data) {
  PcapParseResult result;
  ByteReader r(data);

  auto magic = r.u32le();
  if (!magic) {
    result.error = "truncated header: missing magic";
    return result;
  }
  Endian e;
  switch (*magic) {
    case kMagicUsLe: break;
    case kMagicNsLe: e.nanos = true; break;
    case kMagicUsBe: e.big = true; break;
    case kMagicNsBe: e.big = true; e.nanos = true; break;
    default:
      result.error = "bad magic number";
      return result;
  }

  // version_major(2) version_minor(2) thiszone(4) sigfigs(4) snaplen(4)
  // network(4) = 20 bytes after the magic.
  if (!r.skip(16)) {
    result.error = "truncated global header";
    return result;
  }
  auto linktype = read_u32(r, e.big);
  if (!linktype) {
    result.error = "truncated global header (linktype)";
    return result;
  }
  result.file.linktype = *linktype;

  while (!r.empty()) {
    auto ts_sec = read_u32(r, e.big);
    auto ts_frac = read_u32(r, e.big);
    auto incl_len = read_u32(r, e.big);
    auto orig_len = read_u32(r, e.big);
    if (!ts_sec || !ts_frac || !incl_len || !orig_len) {
      result.error = "truncated record header";
      return result;
    }
    if (*incl_len > 0x0400'0000) {  // 64 MiB sanity bound per record
      result.error = "implausible record length";
      return result;
    }
    auto frame = r.bytes(*incl_len);
    if (!frame) {
      result.error = "truncated record body";
      return result;
    }
    PcapRecord rec;
    const std::uint64_t frac_us = e.nanos ? *ts_frac / 1000 : *ts_frac;
    rec.timestamp_us = static_cast<std::uint64_t>(*ts_sec) * 1'000'000 + frac_us;
    rec.orig_len = *orig_len;
    rec.frame.assign(frame->begin(), frame->end());
    result.file.records.push_back(std::move(rec));
  }
  result.ok = true;
  return result;
}

PcapParseResult read_pcap_file(const std::string& path) {
  PcapParseResult result;
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!f) {
    result.error = "cannot open " + path;
    return result;
  }
  std::vector<std::uint8_t> data;
  std::uint8_t buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  return parse_pcap(data);
}

std::vector<std::uint8_t> serialize_pcap(const PcapFile& file) {
  ByteWriter w(24 + file.records.size() * 80);
  w.u32le(kMagicUsLe);
  w.u16le(2);   // version major
  w.u16le(4);   // version minor
  w.u32le(0);   // thiszone
  w.u32le(0);   // sigfigs
  w.u32le(65535);  // snaplen
  w.u32le(file.linktype);
  for (const auto& rec : file.records) {
    w.u32le(static_cast<std::uint32_t>(rec.timestamp_us / 1'000'000));
    w.u32le(static_cast<std::uint32_t>(rec.timestamp_us % 1'000'000));
    w.u32le(static_cast<std::uint32_t>(rec.frame.size()));
    w.u32le(rec.orig_len != 0 ? rec.orig_len
                              : static_cast<std::uint32_t>(rec.frame.size()));
    w.bytes(rec.frame);
  }
  return w.take();
}

bool write_pcap_file(const std::string& path, const PcapFile& file) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!f) return false;
  const auto data = serialize_pcap(file);
  return std::fwrite(data.data(), 1, data.size(), f.get()) == data.size();
}

}  // namespace iotsentinel::net
