#include "net/ip_address.hpp"

#include <charconv>
#include <cstdio>

namespace iotsentinel::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || octet > 255) return std::nullopt;
    value = (value << 8) | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

Ipv6Address Ipv6Address::link_local_from_mac(
    const std::array<std::uint8_t, 6>& mac) {
  std::array<std::uint8_t, 16> o{};
  o[0] = 0xfe;
  o[1] = 0x80;
  // EUI-64: flip the universal/local bit and insert ff:fe in the middle.
  o[8] = static_cast<std::uint8_t>(mac[0] ^ 0x02);
  o[9] = mac[1];
  o[10] = mac[2];
  o[11] = 0xff;
  o[12] = 0xfe;
  o[13] = mac[3];
  o[14] = mac[4];
  o[15] = mac[5];
  return Ipv6Address(o);
}

std::string Ipv6Address::to_string() const {
  std::string out;
  out.reserve(40);
  char buf[6];
  for (std::size_t i = 0; i < 8; ++i) {
    const unsigned group =
        (static_cast<unsigned>(octets_[2 * i]) << 8) | octets_[2 * i + 1];
    std::snprintf(buf, sizeof(buf), i == 0 ? "%x" : ":%x", group);
    out += buf;
  }
  return out;
}

}  // namespace iotsentinel::net
