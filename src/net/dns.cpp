#include "net/dns.hpp"

#include "net/bytes.hpp"

namespace iotsentinel::net {
namespace {

/// Decodes a (possibly compressed) name starting at `offset` in `msg`.
/// Returns the dotted name and advances `offset` past the in-place part.
/// Compression pointers are followed within `msg` with a hop limit.
std::optional<std::string> read_name(std::span<const std::uint8_t> msg,
                                     std::size_t& offset) {
  std::string name;
  std::size_t pos = offset;
  bool jumped = false;
  int hops = 0;

  while (true) {
    if (pos >= msg.size()) return std::nullopt;
    const std::uint8_t len = msg[pos];
    if (len == 0) {
      ++pos;
      break;
    }
    if ((len & 0xc0) == 0xc0) {  // compression pointer
      if (pos + 1 >= msg.size()) return std::nullopt;
      if (++hops > 16) return std::nullopt;  // pointer loop
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | msg[pos + 1];
      if (!jumped) offset = pos + 2;
      jumped = true;
      if (target >= msg.size()) return std::nullopt;
      pos = target;
      continue;
    }
    if ((len & 0xc0) != 0) return std::nullopt;  // reserved label types
    if (pos + 1 + len > msg.size()) return std::nullopt;
    if (!name.empty()) name.push_back('.');
    for (std::uint8_t i = 0; i < len; ++i) {
      name.push_back(static_cast<char>(msg[pos + 1 + i]));
    }
    pos += 1 + len;
    if (name.size() > 255) return std::nullopt;
  }
  if (!jumped) offset = pos;
  return name;
}

}  // namespace

std::optional<DnsMessage> parse_dns(std::span<const std::uint8_t> payload) {
  if (payload.size() < 12) return std::nullopt;
  DnsMessage msg;
  msg.txn_id = static_cast<std::uint16_t>((payload[0] << 8) | payload[1]);
  msg.is_response = (payload[2] & 0x80) != 0;
  const std::size_t qd = (static_cast<std::size_t>(payload[4]) << 8) | payload[5];
  const std::size_t an = (static_cast<std::size_t>(payload[6]) << 8) | payload[7];
  if (qd > 128 || an > 512) return std::nullopt;  // implausible

  std::size_t offset = 12;
  for (std::size_t q = 0; q < qd; ++q) {
    auto name = read_name(payload, offset);
    if (!name || offset + 4 > payload.size()) return msg;  // truncated
    DnsQuestion question;
    question.name = std::move(*name);
    question.qtype = static_cast<std::uint16_t>((payload[offset] << 8) |
                                                payload[offset + 1]);
    question.qclass = static_cast<std::uint16_t>((payload[offset + 2] << 8) |
                                                 payload[offset + 3]);
    offset += 4;
    msg.questions.push_back(std::move(question));
  }

  for (std::size_t a = 0; a < an; ++a) {
    auto name = read_name(payload, offset);
    if (!name || offset + 10 > payload.size()) return msg;  // truncated
    DnsAnswer answer;
    answer.name = std::move(*name);
    answer.rtype = static_cast<std::uint16_t>((payload[offset] << 8) |
                                              payload[offset + 1]);
    answer.ttl = (static_cast<std::uint32_t>(payload[offset + 4]) << 24) |
                 (static_cast<std::uint32_t>(payload[offset + 5]) << 16) |
                 (static_cast<std::uint32_t>(payload[offset + 6]) << 8) |
                 payload[offset + 7];
    const std::size_t rdlen = (static_cast<std::size_t>(payload[offset + 8]) << 8) |
                              payload[offset + 9];
    offset += 10;
    if (offset + rdlen > payload.size()) return msg;
    if (answer.rtype == 1 && rdlen == 4) {  // A record
      answer.address = Ipv4Address(
          (static_cast<std::uint32_t>(payload[offset]) << 24) |
          (static_cast<std::uint32_t>(payload[offset + 1]) << 16) |
          (static_cast<std::uint32_t>(payload[offset + 2]) << 8) |
          payload[offset + 3]);
    }
    offset += rdlen;
    msg.answers.push_back(std::move(answer));
  }
  return msg;
}

}  // namespace iotsentinel::net
