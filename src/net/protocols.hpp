// Wire-protocol constants shared by the parser and the packet builder.
#pragma once

#include <cstdint>

namespace iotsentinel::net {

/// EtherType values (Ethernet II frames).
namespace ethertype {
inline constexpr std::uint16_t kIpv4 = 0x0800;
inline constexpr std::uint16_t kArp = 0x0806;
inline constexpr std::uint16_t kIpv6 = 0x86dd;
inline constexpr std::uint16_t kEapol = 0x888e;  // 802.1X authentication
/// Values <= 1500 in the EtherType slot are 802.3 lengths (LLC follows).
inline constexpr std::uint16_t kMaxLength8023 = 1500;
}  // namespace ethertype

/// IP protocol numbers.
namespace ipproto {
inline constexpr std::uint8_t kIcmp = 1;
inline constexpr std::uint8_t kTcp = 6;
inline constexpr std::uint8_t kUdp = 17;
inline constexpr std::uint8_t kIcmpv6 = 58;
inline constexpr std::uint8_t kIpv6HopByHop = 0;
}  // namespace ipproto

/// IPv4 option kinds relevant to the Table-I features.
namespace ipopt {
inline constexpr std::uint8_t kEndOfOptions = 0;
inline constexpr std::uint8_t kNop = 1;  // padding
inline constexpr std::uint8_t kRouterAlert = 148;  // RFC 2113 (copied|measurement|20)
}  // namespace ipopt

/// Well-known UDP/TCP ports used for application-protocol detection.
namespace port {
inline constexpr std::uint16_t kHttp = 80;
inline constexpr std::uint16_t kHttpAlt = 8080;
inline constexpr std::uint16_t kHttps = 443;
inline constexpr std::uint16_t kDhcpServer = 67;   // BOOTP/DHCP server
inline constexpr std::uint16_t kDhcpClient = 68;   // BOOTP/DHCP client
inline constexpr std::uint16_t kDns = 53;
inline constexpr std::uint16_t kMdns = 5353;
inline constexpr std::uint16_t kSsdp = 1900;
inline constexpr std::uint16_t kNtp = 123;
}  // namespace port

/// IANA port-class boundaries; the paper's port-class feature maps a port
/// to {0: none, 1: well-known, 2: registered, 3: dynamic}.
namespace portclass {
inline constexpr std::uint16_t kWellKnownMax = 1023;
inline constexpr std::uint16_t kRegisteredMax = 49151;
}  // namespace portclass

/// ARP opcodes.
namespace arpop {
inline constexpr std::uint16_t kRequest = 1;
inline constexpr std::uint16_t kReply = 2;
}  // namespace arpop

/// DHCP message types (option 53).
namespace dhcptype {
inline constexpr std::uint8_t kDiscover = 1;
inline constexpr std::uint8_t kOffer = 2;
inline constexpr std::uint8_t kRequest = 3;
inline constexpr std::uint8_t kAck = 5;
inline constexpr std::uint8_t kInform = 8;
}  // namespace dhcptype

/// EAPoL packet types (802.1X).
namespace eapoltype {
inline constexpr std::uint8_t kEapPacket = 0;
inline constexpr std::uint8_t kStart = 1;
inline constexpr std::uint8_t kLogoff = 2;
inline constexpr std::uint8_t kKey = 3;
}  // namespace eapoltype

}  // namespace iotsentinel::net
