// Native reader/writer for the classic libpcap capture-file format
// (tcpdump's on-disk format, magic 0xa1b2c3d4).
//
// The paper's measurement rig recorded setup traffic with tcpdump; this
// module lets the library ingest those captures directly and lets the
// simulator persist generated traffic in a format every standard tool can
// open. Both microsecond (0xa1b2c3d4) and nanosecond (0xa1b23c4d) variants
// and both byte orders are read; writing always uses the microsecond
// little-endian variant.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace iotsentinel::net {

/// One captured record: timestamp plus frame bytes.
struct PcapRecord {
  std::uint64_t timestamp_us = 0;
  /// Original length on the wire (>= frame.size() when snapped).
  std::uint32_t orig_len = 0;
  std::vector<std::uint8_t> frame;
};

/// A parsed capture file.
struct PcapFile {
  /// Link type; 1 = LINKTYPE_ETHERNET, the only type this library emits.
  std::uint32_t linktype = 1;
  std::vector<PcapRecord> records;
};

/// Outcome of a pcap parse; on failure `error` describes the first
/// malformation encountered (records before it are kept).
struct PcapParseResult {
  PcapFile file;
  bool ok = false;
  std::string error;
};

/// Parses an in-memory pcap image.
PcapParseResult parse_pcap(std::span<const std::uint8_t> data);

/// Reads and parses a pcap file from disk.
PcapParseResult read_pcap_file(const std::string& path);

/// Serializes records into a classic little-endian microsecond pcap image.
std::vector<std::uint8_t> serialize_pcap(const PcapFile& file);

/// Writes a pcap file to disk; returns false on I/O failure.
bool write_pcap_file(const std::string& path, const PcapFile& file);

}  // namespace iotsentinel::net
