// Wire-format packet construction.
//
// The traffic simulator produces *real packet bytes* through these
// builders, which the fingerprinting pipeline then parses exactly as it
// would parse a live capture or a pcap file. This keeps the simulated
// substrate honest: features are never synthesised directly, they always
// travel through the byte layer.
//
// Layer builders (Ethernet/IPv4/IPv6/UDP/TCP) compose; message builders
// (DHCP, DNS, SSDP, NTP, ...) produce complete frames for the setup-phase
// dialogues Table I's protocol set anticipates.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/ip_address.hpp"
#include "net/mac_address.hpp"

namespace iotsentinel::net {

using Bytes = std::vector<std::uint8_t>;

// --- layer builders --------------------------------------------------------

/// Ethernet II frame around an arbitrary payload.
Bytes build_ethernet(const MacAddress& src, const MacAddress& dst,
                     std::uint16_t ethertype, std::span<const std::uint8_t> payload);

/// 802.3 frame with an LLC header (DSAP/SSAP/control) and payload.
Bytes build_llc_frame(const MacAddress& src, const MacAddress& dst,
                      std::uint8_t dsap, std::uint8_t ssap,
                      std::span<const std::uint8_t> payload);

/// Options for the IPv4 header builder.
struct Ipv4Options {
  std::uint8_t ttl = 64;
  /// Adds the RFC 2113 Router Alert option (as IGMP joins do).
  bool router_alert = false;
  /// Pads the options area with NOPs to a 4-byte boundary.
  bool padding = false;
};

/// IPv4 packet inside an Ethernet frame.
Bytes build_ipv4(const MacAddress& src_mac, const MacAddress& dst_mac,
                 Ipv4Address src_ip, Ipv4Address dst_ip, std::uint8_t proto,
                 std::span<const std::uint8_t> payload,
                 const Ipv4Options& opts = {});

/// IPv6 packet inside an Ethernet frame. When `router_alert` is set a
/// hop-by-hop extension header carrying the RFC 2711 option is inserted
/// (as MLD reports do).
Bytes build_ipv6(const MacAddress& src_mac, const MacAddress& dst_mac,
                 const Ipv6Address& src_ip, const Ipv6Address& dst_ip,
                 std::uint8_t next_header,
                 std::span<const std::uint8_t> payload,
                 bool router_alert = false);

/// UDP datagram payload (header + body) for embedding into IPv4/IPv6.
Bytes build_udp_payload(std::uint16_t src_port, std::uint16_t dst_port,
                        std::span<const std::uint8_t> body);

/// TCP header flags.
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;
};

/// TCP segment payload (header + body) for embedding into IPv4/IPv6.
Bytes build_tcp_payload(std::uint16_t src_port, std::uint16_t dst_port,
                        std::uint32_t seq, std::uint32_t ack, TcpFlags flags,
                        std::span<const std::uint8_t> body);

// --- complete frames for setup-phase dialogues ------------------------------

/// ARP request "who has `target`, tell `sender`", broadcast.
Bytes build_arp_request(const MacAddress& sender_mac, Ipv4Address sender_ip,
                        Ipv4Address target_ip);

/// Gratuitous ARP announcing `ip` (sent by devices after DHCP completes).
Bytes build_gratuitous_arp(const MacAddress& sender_mac, Ipv4Address ip);

/// EAPoL frame (802.1X); `type` is an eapoltype:: constant. Used for the
/// WPA2 4-way handshake frames visible during WiFi association.
Bytes build_eapol(const MacAddress& src, const MacAddress& dst,
                  std::uint8_t type, std::span<const std::uint8_t> body);

/// EAPoL-Key frame with a WPA2-key-descriptor-sized body.
Bytes build_eapol_key(const MacAddress& src, const MacAddress& dst);

/// DHCP client message (DISCOVER/REQUEST/INFORM per dhcptype::), broadcast
/// from 0.0.0.0 unless `src_ip` is given. `param_req` lists option codes in
/// the parameter-request option — vendors differ here, which perturbs size.
/// `hostname`, when non-empty, adds option 12 (many devices announce a
/// model-specific hostname).
Bytes build_dhcp(const MacAddress& client_mac, std::uint8_t message_type,
                 std::uint32_t xid, Ipv4Address src_ip = Ipv4Address::any(),
                 const std::vector<std::uint8_t>& param_req = {1, 3, 6, 15},
                 const std::string& hostname = "");

/// DNS A-record query for `hostname` to `server`.
Bytes build_dns_query(const MacAddress& src_mac, const MacAddress& dst_mac,
                      Ipv4Address src_ip, Ipv4Address server,
                      std::uint16_t src_port, std::uint16_t txn_id,
                      const std::string& hostname);

/// mDNS announcement / query for `name` to 224.0.0.251:5353.
Bytes build_mdns(const MacAddress& src_mac, Ipv4Address src_ip,
                 const std::string& name, bool is_response);

/// SSDP M-SEARCH discovery probe to 239.255.255.250:1900.
Bytes build_ssdp_msearch(const MacAddress& src_mac, Ipv4Address src_ip,
                         std::uint16_t src_port, const std::string& search_target);

/// SSDP NOTIFY alive announcement to 239.255.255.250:1900.
Bytes build_ssdp_notify(const MacAddress& src_mac, Ipv4Address src_ip,
                        const std::string& location_url,
                        const std::string& server_tag);

/// NTP v4 client request to `server`.
Bytes build_ntp_request(const MacAddress& src_mac, const MacAddress& dst_mac,
                        Ipv4Address src_ip, Ipv4Address server,
                        std::uint16_t src_port);

/// TCP SYN toward `dst_ip:dst_port` (connection establishment).
Bytes build_tcp_syn(const MacAddress& src_mac, const MacAddress& dst_mac,
                    Ipv4Address src_ip, Ipv4Address dst_ip,
                    std::uint16_t src_port, std::uint16_t dst_port,
                    std::uint32_t seq);

/// HTTP GET request segment toward `host`.
Bytes build_http_get(const MacAddress& src_mac, const MacAddress& dst_mac,
                     Ipv4Address src_ip, Ipv4Address dst_ip,
                     std::uint16_t src_port, const std::string& host,
                     const std::string& path,
                     const std::string& user_agent = "IoTDevice/1.0");

/// TLS ClientHello segment toward `dst_ip`:443 (HTTPS cloud check-in);
/// `sni` sets the server-name extension, perturbing packet size per vendor.
Bytes build_tls_client_hello(const MacAddress& src_mac,
                             const MacAddress& dst_mac, Ipv4Address src_ip,
                             Ipv4Address dst_ip, std::uint16_t src_port,
                             const std::string& sni);

/// IGMPv2 membership report for `group` — carries the IPv4 Router Alert
/// option and option padding, exercising both Table-I IP-option features.
Bytes build_igmp_join(const MacAddress& src_mac, Ipv4Address src_ip,
                      Ipv4Address group);

/// ICMP echo request.
Bytes build_icmp_echo(const MacAddress& src_mac, const MacAddress& dst_mac,
                      Ipv4Address src_ip, Ipv4Address dst_ip,
                      std::uint16_t ident, std::uint16_t seq,
                      std::size_t payload_len = 32);

/// ICMPv6 Router Solicitation from the MAC-derived link-local address.
Bytes build_icmpv6_router_solicit(const MacAddress& src_mac);

/// ICMPv6 MLDv1 report (with hop-by-hop router-alert header) joining the
/// solicited-node multicast group, as every IPv6-enabled device emits.
Bytes build_mldv1_report(const MacAddress& src_mac);

}  // namespace iotsentinel::net
