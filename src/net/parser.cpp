#include "net/parser.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <string_view>

#include "net/bytes.hpp"
#include "net/protocols.hpp"

namespace iotsentinel::net {
namespace {

std::optional<MacAddress> read_mac(ByteReader& r) {
  auto view = r.bytes(6);
  if (!view) return std::nullopt;
  std::array<std::uint8_t, 6> o{};
  std::copy(view->begin(), view->end(), o.begin());
  return MacAddress(o);
}

std::optional<Ipv4Address> read_ipv4(ByteReader& r) {
  auto v = r.u32be();
  if (!v) return std::nullopt;
  return Ipv4Address(*v);
}

std::optional<Ipv6Address> read_ipv6(ByteReader& r) {
  auto view = r.bytes(16);
  if (!view) return std::nullopt;
  std::array<std::uint8_t, 16> o{};
  std::copy(view->begin(), view->end(), o.begin());
  return Ipv6Address(o);
}

bool starts_with(std::span<const std::uint8_t> data, std::string_view prefix) {
  if (data.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (static_cast<char>(data[i]) != prefix[i]) return false;
  }
  return true;
}

/// HTTP request methods / response prefix seen at payload start.
bool looks_like_http(std::span<const std::uint8_t> payload) {
  static constexpr std::string_view kPrefixes[] = {
      "GET ",    "POST ",   "PUT ",     "HEAD ",  "DELETE ",
      "OPTIONS", "PATCH ",  "HTTP/1.",  "HTTP/2",
  };
  for (auto p : kPrefixes) {
    if (starts_with(payload, p)) return true;
  }
  return false;
}

/// SSDP is HTTPU: M-SEARCH / NOTIFY / 200 OK over UDP 1900.
bool looks_like_ssdp(std::span<const std::uint8_t> payload) {
  return starts_with(payload, "M-SEARCH") || starts_with(payload, "NOTIFY") ||
         starts_with(payload, "HTTP/1.1 200 OK");
}

/// TLS record: handshake (22), version 3.x.
bool looks_like_tls(std::span<const std::uint8_t> payload) {
  return payload.size() >= 3 && payload[0] == 22 && payload[1] == 3 &&
         payload[2] <= 4;
}

/// BOOTP fixed header is 236 bytes followed (for DHCP) by the magic cookie
/// 63 82 53 63.
bool has_dhcp_cookie(std::span<const std::uint8_t> payload) {
  return payload.size() >= 240 && payload[236] == 0x63 &&
         payload[237] == 0x82 && payload[238] == 0x53 && payload[239] == 0x63;
}

/// BOOTP op is 1 (request) or 2 (reply), htype 1 (Ethernet).
bool looks_like_bootp(std::span<const std::uint8_t> payload) {
  return payload.size() >= 236 && (payload[0] == 1 || payload[0] == 2) &&
         payload[1] == 1 && payload[2] == 6;
}

/// DNS header: 12 bytes, QDCOUNT >= 1 for queries; accept any well-formed
/// header shape since we only see the first bytes.
bool looks_like_dns(std::span<const std::uint8_t> payload) {
  if (payload.size() < 12) return false;
  const unsigned qd = (static_cast<unsigned>(payload[4]) << 8) | payload[5];
  const unsigned an = (static_cast<unsigned>(payload[6]) << 8) | payload[7];
  return qd + an > 0 && qd < 64 && an < 256;
}

/// NTP: first byte is LI|VN|Mode with version 1..4 and mode 1..5.
bool looks_like_ntp(std::span<const std::uint8_t> payload) {
  if (payload.size() < 48) return false;
  const unsigned vn = (payload[0] >> 3) & 0x7;
  const unsigned mode = payload[0] & 0x7;
  return vn >= 1 && vn <= 4 && mode >= 1 && mode <= 5;
}

void parse_transport_payload(ParsedPacket& pkt,
                             std::span<const std::uint8_t> payload) {
  pkt.payload_size = static_cast<std::uint32_t>(payload.size());
  pkt.has_payload = !payload.empty();
  const std::uint16_t sp = pkt.src_port.value_or(0);
  const std::uint16_t dp = pkt.dst_port.value_or(0);
  pkt.app = detect_app_protocols(pkt.is_tcp, pkt.is_udp, sp, dp, payload);
}

void parse_tcp(ParsedPacket& pkt, ByteReader& r) {
  auto sp = r.u16be();
  auto dp = r.u16be();
  if (!sp || !dp) return;
  pkt.is_tcp = true;
  pkt.src_port = *sp;
  pkt.dst_port = *dp;
  if (!r.skip(8)) return;  // seq + ack
  auto offset_flags = r.u16be();
  if (!offset_flags) return;
  const std::size_t header_len = ((*offset_flags >> 12) & 0xf) * 4;
  if (header_len < 20) return;
  // Already consumed 14 of the header (ports 4, seq/ack 8, off/flags 2).
  if (!r.skip(4)) return;  // window(2) is next; skip window+checksum...
  // window(2) + checksum(2) + urgent(2) = 6 bytes then options.
  if (!r.skip(2)) return;
  const std::size_t options_len = header_len - 20;
  if (!r.skip(options_len)) return;
  parse_transport_payload(pkt, r.peek_rest());
}

void parse_udp(ParsedPacket& pkt, ByteReader& r) {
  auto sp = r.u16be();
  auto dp = r.u16be();
  auto len = r.u16be();
  auto checksum = r.u16be();
  if (!sp || !dp || !len || !checksum) return;
  pkt.is_udp = true;
  pkt.src_port = *sp;
  pkt.dst_port = *dp;
  // UDP length covers header + payload; trust the smaller of the declared
  // and available payload sizes.
  std::span<const std::uint8_t> payload = r.peek_rest();
  if (*len >= 8) {
    const std::size_t declared = static_cast<std::size_t>(*len) - 8;
    if (declared < payload.size()) payload = payload.subspan(0, declared);
  }
  parse_transport_payload(pkt, payload);
}

void parse_ipv4_options(ParsedPacket& pkt,
                        std::span<const std::uint8_t> options) {
  ByteReader r(options);
  while (!r.empty()) {
    auto kind = r.u8();
    if (!kind) return;
    if (*kind == ipopt::kEndOfOptions) {
      // Remaining bytes (if any) are padding to the 4-byte boundary.
      if (!r.empty()) pkt.ip_opt_padding = true;
      return;
    }
    if (*kind == ipopt::kNop) {
      pkt.ip_opt_padding = true;
      continue;
    }
    auto len = r.u8();
    if (!len || *len < 2) return;  // malformed option
    if (*kind == ipopt::kRouterAlert) pkt.ip_opt_router_alert = true;
    if (!r.skip(static_cast<std::size_t>(*len) - 2)) return;
  }
}

void parse_ipv4(ParsedPacket& pkt, ByteReader& r) {
  auto ver_ihl = r.u8();
  if (!ver_ihl || (*ver_ihl >> 4) != 4) return;
  const std::size_t ihl = (*ver_ihl & 0xf) * 4;
  if (ihl < 20) return;
  pkt.is_ipv4 = true;
  if (!r.skip(1)) return;  // DSCP/ECN
  auto total_len = r.u16be();
  if (!total_len) return;
  if (!r.skip(5)) return;  // id(2) + flags/frag(2) + ttl(1)
  auto proto = r.u8();
  if (!proto) return;
  if (!r.skip(2)) return;  // checksum
  auto src = read_ipv4(r);
  auto dst = read_ipv4(r);
  if (!src || !dst) return;
  pkt.src_ip = IpAddress(*src);
  pkt.dst_ip = IpAddress(*dst);
  if (ihl > 20) {
    auto opts = r.bytes(ihl - 20);
    if (!opts) return;
    parse_ipv4_options(pkt, *opts);
  }
  // Clamp to the declared total length so Ethernet minimum-frame padding is
  // not mistaken for transport payload.
  std::span<const std::uint8_t> ip_payload = r.peek_rest();
  if (*total_len >= ihl) {
    const std::size_t declared = *total_len - ihl;
    if (declared < ip_payload.size()) ip_payload = ip_payload.subspan(0, declared);
  }
  ByteReader pr(ip_payload);
  switch (*proto) {
    case ipproto::kIcmp:
      pkt.is_icmp = true;
      pkt.has_payload = pr.remaining() > 8;
      pkt.payload_size = static_cast<std::uint32_t>(
          pr.remaining() > 8 ? pr.remaining() - 8 : 0);
      break;
    case ipproto::kTcp:
      parse_tcp(pkt, pr);
      break;
    case ipproto::kUdp:
      parse_udp(pkt, pr);
      break;
    default:
      pkt.has_payload = !pr.empty();
      pkt.payload_size = static_cast<std::uint32_t>(pr.remaining());
      break;
  }
}

void parse_ipv6(ParsedPacket& pkt, ByteReader& r) {
  auto first = r.u8();
  if (!first || (*first >> 4) != 6) return;
  pkt.is_ipv6 = true;
  if (!r.skip(3)) return;  // rest of version/tc/flow label
  auto payload_len = r.u16be();
  auto next_header = r.u8();
  auto hop_limit = r.u8();
  if (!payload_len || !next_header || !hop_limit) return;
  auto src = read_ipv6(r);
  auto dst = read_ipv6(r);
  if (!src || !dst) return;
  pkt.src_ip = IpAddress(*src);
  pkt.dst_ip = IpAddress(*dst);

  // Clamp to the declared payload length (same padding concern as IPv4).
  std::span<const std::uint8_t> ip_payload = r.peek_rest();
  if (*payload_len < ip_payload.size())
    ip_payload = ip_payload.subspan(0, *payload_len);
  ByteReader pr(ip_payload);

  std::uint8_t nh = *next_header;
  // Walk extension headers; only hop-by-hop is expected from IoT setup
  // traffic (MLD reports carry a router-alert option there).
  for (int guard = 0; guard < 8 && nh == ipproto::kIpv6HopByHop; ++guard) {
    auto ext_next = pr.u8();
    auto ext_len = pr.u8();
    if (!ext_next || !ext_len) return;
    const std::size_t body_len = (static_cast<std::size_t>(*ext_len) + 1) * 8 - 2;
    auto body = pr.bytes(body_len);
    if (!body) return;
    // Scan TLV options for router alert (type 5) and PadN/Pad1 (0/1).
    ByteReader opt(*body);
    while (!opt.empty()) {
      auto t = opt.u8();
      if (!t) break;
      if (*t == 0) {  // Pad1
        pkt.ip_opt_padding = true;
        continue;
      }
      auto l = opt.u8();
      if (!l) break;
      if (*t == 1) pkt.ip_opt_padding = true;       // PadN
      if (*t == 5) pkt.ip_opt_router_alert = true;  // RFC 2711
      if (!opt.skip(*l)) break;
    }
    nh = *ext_next;
  }

  switch (nh) {
    case ipproto::kIcmpv6:
      pkt.is_icmpv6 = true;
      pkt.has_payload = pr.remaining() > 8;
      pkt.payload_size = static_cast<std::uint32_t>(
          pr.remaining() > 8 ? pr.remaining() - 8 : 0);
      break;
    case ipproto::kTcp:
      parse_tcp(pkt, pr);
      break;
    case ipproto::kUdp:
      parse_udp(pkt, pr);
      break;
    default:
      pkt.has_payload = !pr.empty();
      pkt.payload_size = static_cast<std::uint32_t>(pr.remaining());
      break;
  }
}

void parse_arp(ParsedPacket& pkt, ByteReader& r) {
  pkt.is_arp = true;
  // ARP for Ethernet/IPv4: htype(2) ptype(2) hlen(1) plen(1) op(2)
  // sha(6) spa(4) tha(6) tpa(4). Record protocol addresses when present.
  if (!r.skip(8)) return;
  if (!r.skip(6)) return;  // sender MAC already known from Ethernet
  auto spa = read_ipv4(r);
  if (!r.skip(6)) return;
  auto tpa = read_ipv4(r);
  if (spa && spa->value() != 0) pkt.src_ip = IpAddress(*spa);
  if (tpa && tpa->value() != 0) pkt.dst_ip = IpAddress(*tpa);
}

void parse_eapol(ParsedPacket& pkt, ByteReader& r) {
  pkt.is_eapol = true;
  auto version = r.u8();
  auto type = r.u8();
  auto len = r.u16be();
  if (!version || !type || !len) return;
  pkt.has_payload = *len > 0;
  pkt.payload_size = *len;
}

}  // namespace

AppProtocols detect_app_protocols(bool is_tcp, bool is_udp,
                                  std::uint16_t src_port,
                                  std::uint16_t dst_port,
                                  std::span<const std::uint8_t> payload) {
  AppProtocols app;
  auto on_port = [&](std::uint16_t p) {
    return src_port == p || dst_port == p;
  };

  if (is_udp) {
    if (on_port(port::kDhcpServer) || on_port(port::kDhcpClient)) {
      app.bootp = looks_like_bootp(payload) || payload.empty();
      app.dhcp = has_dhcp_cookie(payload);
      // A BOOTP frame on the DHCP ports without the cookie is plain BOOTP.
      if (!app.bootp && app.dhcp) app.bootp = true;
    }
    if (on_port(port::kMdns)) {
      app.mdns = payload.empty() || looks_like_dns(payload);
    } else if (on_port(port::kDns)) {
      app.dns = payload.empty() || looks_like_dns(payload);
    }
    if (on_port(port::kSsdp)) {
      app.ssdp = payload.empty() || looks_like_ssdp(payload) ||
                 looks_like_http(payload);
    }
    if (on_port(port::kNtp)) {
      app.ntp = payload.empty() || looks_like_ntp(payload);
    }
    if (on_port(port::kHttps)) app.https = true;  // QUIC / DTLS 443
  }

  if (is_tcp) {
    if (on_port(port::kDns)) app.dns = true;  // DNS over TCP
    if (on_port(port::kHttps) || looks_like_tls(payload)) app.https = true;
    if (on_port(port::kHttp) || on_port(port::kHttpAlt) ||
        looks_like_http(payload)) {
      app.http = !app.https;
    }
  }

  return app;
}

ParsedPacket parse_ethernet_frame(std::span<const std::uint8_t> frame,
                                  std::uint64_t timestamp_us) {
  ParsedPacket pkt;
  pkt.timestamp_us = timestamp_us;
  pkt.wire_size = static_cast<std::uint32_t>(frame.size());

  ByteReader r(frame);
  auto dst = read_mac(r);
  auto src = read_mac(r);
  auto type_or_len = r.u16be();
  if (!dst || !src || !type_or_len) return pkt;
  pkt.dst_mac = *dst;
  pkt.src_mac = *src;

  if (*type_or_len <= ethertype::kMaxLength8023) {
    // 802.3 frame: LLC header (DSAP, SSAP, control) follows. Spanning-tree
    // BPDUs and other non-IP control frames land here.
    pkt.is_llc = true;
    pkt.has_payload = r.remaining() > 3;
    pkt.payload_size =
        static_cast<std::uint32_t>(r.remaining() > 3 ? r.remaining() - 3 : 0);
    return pkt;
  }

  switch (*type_or_len) {
    case ethertype::kIpv4:
      parse_ipv4(pkt, r);
      break;
    case ethertype::kIpv6:
      parse_ipv6(pkt, r);
      break;
    case ethertype::kArp:
      parse_arp(pkt, r);
      break;
    case ethertype::kEapol:
      parse_eapol(pkt, r);
      break;
    default:
      pkt.has_payload = !r.empty();
      pkt.payload_size = static_cast<std::uint32_t>(r.remaining());
      break;
  }
  return pkt;
}

std::span<const std::uint8_t> udp_payload_of(
    std::span<const std::uint8_t> frame) {
  // Ethernet(14) + IPv4(ihl) + UDP(8): compute offsets with the same
  // bounds discipline as the main parser.
  if (frame.size() < 14 + 20 + 8) return {};
  if (frame[12] != 0x08 || frame[13] != 0x00) return {};  // not IPv4
  const std::uint8_t ver_ihl = frame[14];
  if ((ver_ihl >> 4) != 4) return {};
  const std::size_t ihl = static_cast<std::size_t>(ver_ihl & 0xf) * 4;
  if (ihl < 20 || frame.size() < 14 + ihl + 8) return {};
  if (frame[14 + 9] != ipproto::kUdp) return {};
  const std::size_t total_len =
      (static_cast<std::size_t>(frame[16]) << 8) | frame[17];
  const std::size_t udp_off = 14 + ihl;
  const std::size_t udp_len =
      (static_cast<std::size_t>(frame[udp_off + 4]) << 8) |
      frame[udp_off + 5];
  if (udp_len < 8) return {};
  std::size_t payload_len = udp_len - 8;
  // Clamp to the frame and the IP total length (min-frame padding).
  payload_len = std::min(payload_len, frame.size() - udp_off - 8);
  if (total_len >= ihl + 8) {
    payload_len = std::min(payload_len, total_len - ihl - 8);
  }
  return frame.subspan(udp_off + 8, payload_len);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::string ParsedPacket::summary() const {
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "ts=%lluus %uB ",
                static_cast<unsigned long long>(timestamp_us), wire_size);
  out += buf;
  out += src_mac.to_string() + " -> " + dst_mac.to_string();
  if (is_llc) out += " LLC";
  if (is_arp) out += " ARP";
  if (is_eapol) out += " EAPoL";
  if (is_ipv4) out += " IPv4";
  if (is_ipv6) out += " IPv6";
  if (is_icmp) out += " ICMP";
  if (is_icmpv6) out += " ICMPv6";
  if (is_tcp) out += " TCP";
  if (is_udp) out += " UDP";
  if (src_port && dst_port) {
    std::snprintf(buf, sizeof(buf), " %u->%u", *src_port, *dst_port);
    out += buf;
  }
  if (app.http) out += " HTTP";
  if (app.https) out += " HTTPS";
  if (app.dhcp) out += " DHCP";
  else if (app.bootp) out += " BOOTP";
  if (app.ssdp) out += " SSDP";
  if (app.dns) out += " DNS";
  if (app.mdns) out += " MDNS";
  if (app.ntp) out += " NTP";
  return out;
}

}  // namespace iotsentinel::net
