#include "net/mac_address.hpp"

#include <cctype>

namespace iotsentinel::net {
namespace {

std::optional<int> hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return std::nullopt;
}

char to_hex(int v, bool upper) {
  if (v < 10) return static_cast<char>('0' + v);
  return static_cast<char>((upper ? 'A' : 'a') + v - 10);
}

std::string format(const std::array<std::uint8_t, 6>& octets, char sep,
                   bool upper) {
  std::string out;
  out.reserve(17);
  for (std::size_t i = 0; i < octets.size(); ++i) {
    if (i != 0) out.push_back(sep);
    out.push_back(to_hex(octets[i] >> 4, upper));
    out.push_back(to_hex(octets[i] & 0xf, upper));
  }
  return out;
}

}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  // Expected shape: XX?XX?XX?XX?XX?XX with ':' or '-' separators.
  if (text.size() != 17) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) {
    const std::size_t base = i * 3;
    auto hi = hex_digit(text[base]);
    auto lo = hex_digit(text[base + 1]);
    if (!hi || !lo) return std::nullopt;
    octets[i] = static_cast<std::uint8_t>((*hi << 4) | *lo);
    if (i < 5) {
      const char sep = text[base + 2];
      if (sep != ':' && sep != '-') return std::nullopt;
    }
  }
  return MacAddress(octets);
}

std::string MacAddress::to_string() const {
  return format(octets_, ':', /*upper=*/false);
}

std::string MacAddress::to_rule_string() const {
  return format(octets_, '-', /*upper=*/true);
}

}  // namespace iotsentinel::net
