// Structured DHCP/BOOTP message parsing.
//
// The fingerprinting features only need the DHCP *flag* (and get it from
// the heuristic detector), but the gateway's device inventory benefits
// from the message content: client hostname (option 12), vendor class
// (option 60), requested parameters (option 55) and the leased/requested
// addresses. This module parses the full message.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/ip_address.hpp"
#include "net/mac_address.hpp"

namespace iotsentinel::net {

/// A parsed DHCP message (client or server side).
struct DhcpMessage {
  /// BOOTP op: 1 request, 2 reply.
  std::uint8_t op = 0;
  std::uint32_t xid = 0;
  /// ciaddr: client's current address (INFORM/renew).
  Ipv4Address client_addr;
  /// yiaddr: address offered/assigned by the server.
  Ipv4Address your_addr;
  MacAddress client_mac;
  /// Option 53 message type (dhcptype::*); 0 when absent (plain BOOTP).
  std::uint8_t message_type = 0;
  /// Option 12 client hostname.
  std::string hostname;
  /// Option 60 vendor class identifier.
  std::string vendor_class;
  /// Option 55 parameter request list.
  std::vector<std::uint8_t> param_request_list;
  /// Option 50 requested IP address.
  std::optional<Ipv4Address> requested_ip;
  /// Option 54 server identifier.
  std::optional<Ipv4Address> server_id;
  /// All option codes present, in wire order (itself a fingerprintable
  /// vendor signature).
  std::vector<std::uint8_t> option_codes;
};

/// Parses the UDP payload of a DHCP packet (the BOOTP frame). Returns
/// nullopt when the fixed header or magic cookie is malformed; unknown
/// options are skipped, a truncated option list ends parsing gracefully.
std::optional<DhcpMessage> parse_dhcp(std::span<const std::uint8_t> payload);

}  // namespace iotsentinel::net
