// CRC32C (Castagnoli, polynomial 0x1EDC6F41) over byte ranges.
//
// This is the integrity primitive of the IOTS1 model container
// (docs/FORMAT.md): every section payload and the whole file carry a
// CRC32C so that truncated or bit-flipped artifacts are rejected before
// any structural parse runs. CRC32C detects all single-burst errors up
// to 32 bits — in particular every single-byte corruption.
#pragma once

#include <cstdint>
#include <span>

namespace iotsentinel::net {

/// CRC32C of `data`. `seed` is a previous return value, allowing a large
/// range to be checksummed in chunks:
///   crc32c(whole) == crc32c(tail, crc32c(head)).
/// The empty range returns `seed` unchanged (0 for the default seed).
/// Never fails; any byte sequence has a well-defined checksum.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data,
                                   std::uint32_t seed = 0);

}  // namespace iotsentinel::net
