#include "net/dhcp.hpp"

#include <algorithm>

#include "net/bytes.hpp"

namespace iotsentinel::net {

std::optional<DhcpMessage> parse_dhcp(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  DhcpMessage msg;

  auto op = r.u8();
  auto htype = r.u8();
  auto hlen = r.u8();
  auto hops = r.u8();
  auto xid = r.u32be();
  if (!op || !htype || !hlen || !hops || !xid) return std::nullopt;
  if (*op != 1 && *op != 2) return std::nullopt;
  msg.op = *op;
  msg.xid = *xid;
  if (!r.skip(4)) return std::nullopt;  // secs + flags
  auto ciaddr = r.u32be();
  auto yiaddr = r.u32be();
  if (!ciaddr || !yiaddr) return std::nullopt;
  msg.client_addr = Ipv4Address(*ciaddr);
  msg.your_addr = Ipv4Address(*yiaddr);
  if (!r.skip(8)) return std::nullopt;  // siaddr + giaddr
  auto chaddr = r.bytes(16);
  if (!chaddr) return std::nullopt;
  if (*htype == 1 && *hlen == 6) {
    std::array<std::uint8_t, 6> mac{};
    std::copy_n(chaddr->begin(), 6, mac.begin());
    msg.client_mac = MacAddress(mac);
  }
  if (!r.skip(64 + 128)) return std::nullopt;  // sname + file

  // Magic cookie, then options.
  auto cookie = r.u32be();
  if (!cookie || *cookie != 0x63825363) return std::nullopt;

  while (!r.empty()) {
    auto code = r.u8();
    if (!code) break;
    if (*code == 0) continue;   // pad
    if (*code == 255) break;    // end
    auto len = r.u8();
    if (!len) break;
    auto body = r.bytes(*len);
    if (!body) break;  // truncated option list: keep what we have
    msg.option_codes.push_back(*code);
    switch (*code) {
      case 12:  // hostname
        msg.hostname.assign(body->begin(), body->end());
        break;
      case 50:  // requested IP
        if (*len == 4) {
          msg.requested_ip = Ipv4Address(
              (std::uint32_t{(*body)[0]} << 24) | ((*body)[1] << 16) |
              ((*body)[2] << 8) | (*body)[3]);
        }
        break;
      case 53:  // message type
        if (*len >= 1) msg.message_type = (*body)[0];
        break;
      case 54:  // server identifier
        if (*len == 4) {
          msg.server_id = Ipv4Address(
              (std::uint32_t{(*body)[0]} << 24) | ((*body)[1] << 16) |
              ((*body)[2] << 8) | (*body)[3]);
        }
        break;
      case 55:  // parameter request list
        msg.param_request_list.assign(body->begin(), body->end());
        break;
      case 60:  // vendor class
        msg.vendor_class.assign(body->begin(), body->end());
        break;
      default:
        break;  // recorded in option_codes, content ignored
    }
  }
  return msg;
}

}  // namespace iotsentinel::net
