// Structured DNS/mDNS message parsing.
//
// Queried names are a strong behavioural signal (every vendor cloud has
// its own hostnames); the device inventory records them per device. The
// parser handles standard label sequences and RFC 1035 compression
// pointers with loop protection.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/ip_address.hpp"

namespace iotsentinel::net {

/// One parsed question entry.
struct DnsQuestion {
  std::string name;   // dotted form, lower-cased as on the wire
  std::uint16_t qtype = 0;
  std::uint16_t qclass = 0;
};

/// One parsed answer record (A records carry `address`).
struct DnsAnswer {
  std::string name;
  std::uint16_t rtype = 0;
  std::uint32_t ttl = 0;
  std::optional<Ipv4Address> address;  // for A records
};

/// A parsed DNS message.
struct DnsMessage {
  std::uint16_t txn_id = 0;
  bool is_response = false;
  std::vector<DnsQuestion> questions;
  std::vector<DnsAnswer> answers;
};

/// Parses a DNS/mDNS message (UDP payload). Returns nullopt when the
/// header is malformed; truncated record sections yield the records parsed
/// so far.
std::optional<DnsMessage> parse_dns(std::span<const std::uint8_t> payload);

}  // namespace iotsentinel::net
