// Byte-buffer reading and writing helpers with explicit big-endian
// (network order) accessors and bounds checking.
//
// Parsers in this library never touch raw pointers: they consume a
// ByteReader, which returns std::optional on out-of-bounds access instead
// of invoking undefined behaviour. Builders produce bytes through a
// ByteWriter that appends to a growable buffer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace iotsentinel::net {

/// Immutable cursor over a byte span. All multi-byte reads are big-endian
/// (network byte order). Every accessor is bounds-checked and returns
/// std::nullopt on truncation; the cursor does not advance on failure.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Current absolute offset from the start of the buffer.
  [[nodiscard]] std::size_t position() const { return pos_; }
  /// True when the cursor is at the end of the buffer.
  [[nodiscard]] bool empty() const { return remaining() == 0; }

  /// Reads one byte.
  std::optional<std::uint8_t> u8() {
    if (remaining() < 1) return std::nullopt;
    return data_[pos_++];
  }

  /// Reads a 16-bit big-endian integer.
  std::optional<std::uint16_t> u16be() {
    if (remaining() < 2) return std::nullopt;
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  /// Reads a 64-bit big-endian integer.
  std::optional<std::uint64_t> u64be() {
    if (remaining() < 8) return std::nullopt;
    auto hi = u32be();
    auto lo = u32be();
    return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
  }

  /// Reads a 32-bit big-endian integer.
  std::optional<std::uint32_t> u32be() {
    if (remaining() < 4) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }

  /// Reads a 32-bit little-endian integer (used by the pcap container
  /// format, which is host-endian with a magic-number marker).
  std::optional<std::uint32_t> u32le() {
    if (remaining() < 4) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }

  /// Reads a 16-bit little-endian integer.
  std::optional<std::uint16_t> u16le() {
    if (remaining() < 2) return std::nullopt;
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8) | data_[pos_]);
    pos_ += 2;
    return v;
  }

  /// Returns a view of the next n bytes and advances past them.
  std::optional<std::span<const std::uint8_t>> bytes(std::size_t n) {
    if (remaining() < n) return std::nullopt;
    auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  /// Advances the cursor by n bytes. Returns false (without moving) on
  /// truncation.
  bool skip(std::size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

  /// Returns the rest of the buffer without consuming it.
  [[nodiscard]] std::span<const std::uint8_t> peek_rest() const {
    return data_.subspan(pos_);
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Append-only builder for wire-format messages. Multi-byte writes are
/// big-endian unless suffixed `le`.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16be(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  }

  void u64be(std::uint64_t v) {
    u32be(static_cast<std::uint32_t>(v >> 32));
    u32be(static_cast<std::uint32_t>(v & 0xffffffff));
  }

  void u32be(std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8)
      buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }

  void u16le(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32le(std::uint32_t v) {
    for (int shift = 0; shift <= 24; shift += 8)
      buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void bytes(const std::string& s) {
    for (char c : s) buf_.push_back(static_cast<std::uint8_t>(c));
  }

  /// Appends n copies of `fill`.
  void pad(std::size_t n, std::uint8_t fill = 0) {
    buf_.insert(buf_.end(), n, fill);
  }

  /// Overwrites a previously written 16-bit big-endian field in place
  /// (used to patch length/checksum fields after the payload is known).
  void patch_u16be(std::size_t offset, std::uint16_t v) {
    buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
    buf_.at(offset + 1) = static_cast<std::uint8_t>(v & 0xff);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// RFC 1071 Internet checksum over a byte range (used by IPv4/ICMP builders
/// so that generated packets are well-formed for external tools).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace iotsentinel::net
