// Byte-buffer reading and writing helpers with explicit big-endian
// (network order) accessors and bounds checking.
//
// Parsers in this library never touch raw pointers: they consume a
// ByteReader, which returns std::optional on out-of-bounds access instead
// of invoking undefined behaviour. Builders produce bytes through a
// ByteWriter that appends to a growable buffer.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace iotsentinel::net {

/// Immutable cursor over a byte span. All multi-byte reads are big-endian
/// (network byte order) unless suffixed `le`.
///
/// Error contract: every accessor is bounds-checked. On truncation it
/// returns std::nullopt (or false for `skip`/`read_tag`) and the cursor
/// does NOT advance, so a failed read can be reported against the exact
/// offset where the input ran out (`position()`). No accessor throws and
/// none invokes undefined behaviour, whatever the input bytes.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Current absolute offset from the start of the buffer.
  [[nodiscard]] std::size_t position() const { return pos_; }
  /// True when the cursor is at the end of the buffer.
  [[nodiscard]] bool empty() const { return remaining() == 0; }

  /// Reads one byte.
  std::optional<std::uint8_t> u8() {
    if (remaining() < 1) return std::nullopt;
    return data_[pos_++];
  }

  /// Reads a 16-bit big-endian integer.
  std::optional<std::uint16_t> u16be() {
    if (remaining() < 2) return std::nullopt;
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  /// Reads a 64-bit big-endian integer.
  std::optional<std::uint64_t> u64be() {
    if (remaining() < 8) return std::nullopt;
    auto hi = u32be();
    auto lo = u32be();
    return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
  }

  /// Reads a 32-bit big-endian integer.
  std::optional<std::uint32_t> u32be() {
    if (remaining() < 4) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }

  /// Reads a 32-bit little-endian integer (used by the pcap container
  /// format, which is host-endian with a magic-number marker).
  std::optional<std::uint32_t> u32le() {
    if (remaining() < 4) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
  }

  /// Reads a 16-bit little-endian integer.
  std::optional<std::uint16_t> u16le() {
    if (remaining() < 2) return std::nullopt;
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8) | data_[pos_]);
    pos_ += 2;
    return v;
  }

  /// Reads an IEEE-754 binary32 stored big-endian (bit pattern, not a
  /// textual encoding; NaN payloads round-trip).
  std::optional<float> f32be() {
    auto bits = u32be();
    if (!bits) return std::nullopt;
    return std::bit_cast<float>(*bits);
  }

  /// Returns a view of the next n bytes and advances past them.
  std::optional<std::span<const std::uint8_t>> bytes(std::size_t n) {
    if (remaining() < n) return std::nullopt;
    auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

  /// Consumes a 4-byte ASCII tag iff it matches `expected` exactly.
  /// Returns false — without advancing — on truncation or mismatch, so a
  /// caller can probe for one of several record types at the same offset.
  /// `expected.size()` must be 4.
  bool read_tag(std::string_view expected) {
    if (expected.size() != 4 || remaining() < 4) return false;
    for (std::size_t i = 0; i < 4; ++i) {
      if (data_[pos_ + i] != static_cast<std::uint8_t>(expected[i]))
        return false;
    }
    pos_ += 4;
    return true;
  }

  /// Splits off a sub-reader over the next n bytes and advances past
  /// them. This is the bounds-hardening primitive for length-prefixed
  /// records: whatever a malformed length claims, the sub-reader can
  /// never read outside its slice, and the parent resumes exactly at the
  /// record boundary (unparsed trailing bytes inside the slice are
  /// skipped — the forward-compatibility hook for fields appended by
  /// newer writers). Nullopt (parent unmoved) when fewer than n bytes
  /// remain.
  std::optional<ByteReader> slice(std::size_t n) {
    auto view = bytes(n);
    if (!view) return std::nullopt;
    return ByteReader(*view);
  }

  /// Advances the cursor by n bytes. Returns false (without moving) on
  /// truncation.
  bool skip(std::size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

  /// Returns the rest of the buffer without consuming it.
  [[nodiscard]] std::span<const std::uint8_t> peek_rest() const {
    return data_.subspan(pos_);
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Append-only builder for wire-format messages. Multi-byte writes are
/// big-endian unless suffixed `le`.
///
/// Error contract: writes never fail (the buffer grows as needed; memory
/// exhaustion surfaces as std::bad_alloc like any vector). The `patch_*`
/// helpers are the only bounds-checked entry points — they throw
/// std::out_of_range when the patched field was never written.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16be(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
  }

  void u64be(std::uint64_t v) {
    u32be(static_cast<std::uint32_t>(v >> 32));
    u32be(static_cast<std::uint32_t>(v & 0xffffffff));
  }

  void u32be(std::uint32_t v) {
    for (int shift = 24; shift >= 0; shift -= 8)
      buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }

  /// Writes an IEEE-754 binary32 big-endian (bit pattern; inverse of
  /// `ByteReader::f32be`).
  void f32be(float v) { u32be(std::bit_cast<std::uint32_t>(v)); }

  void u16le(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void u32le(std::uint32_t v) {
    for (int shift = 0; shift <= 24; shift += 8)
      buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void bytes(const std::string& s) {
    for (char c : s) buf_.push_back(static_cast<std::uint8_t>(c));
  }

  /// Appends n copies of `fill`.
  void pad(std::size_t n, std::uint8_t fill = 0) {
    buf_.insert(buf_.end(), n, fill);
  }

  /// Overwrites a previously written 16-bit big-endian field in place
  /// (used to patch length/checksum fields after the payload is known).
  void patch_u16be(std::size_t offset, std::uint16_t v) {
    buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
    buf_.at(offset + 1) = static_cast<std::uint8_t>(v & 0xff);
  }

  /// Overwrites a previously written 32-bit big-endian field in place
  /// (length prefixes of framed records whose payload size is only known
  /// after the payload is written).
  void patch_u32be(std::size_t offset, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.at(offset + static_cast<std::size_t>(i)) =
          static_cast<std::uint8_t>((v >> (24 - 8 * i)) & 0xff);
    }
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// RFC 1071 Internet checksum over a byte range (used by IPv4/ICMP builders
/// so that generated packets are well-formed for external tools).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

}  // namespace iotsentinel::net
