// Full-stack frame parser: raw bytes -> ParsedPacket.
//
// Handles Ethernet II and 802.3/LLC framing, ARP, EAPoL (802.1X), IPv4
// with header options, IPv6 with hop-by-hop extension headers, ICMP,
// ICMPv6, TCP and UDP, plus application-protocol detection. Parsing is
// strictly bounds-checked; malformed or truncated packets yield a summary
// of whatever prefix was valid (mirroring what a passive monitor can know)
// rather than failing outright.
#pragma once

#include <cstdint>
#include <span>

#include "net/packet.hpp"

namespace iotsentinel::net {

/// Parses one Ethernet frame.
///
/// `timestamp_us` is the capture timestamp copied into the result. A frame
/// shorter than the 14-byte Ethernet header returns a ParsedPacket with
/// only `wire_size`/`timestamp_us` set.
ParsedPacket parse_ethernet_frame(std::span<const std::uint8_t> frame,
                                  std::uint64_t timestamp_us = 0);

/// Application-protocol detection given transport endpoints and payload.
///
/// Combines well-known-port matching (both directions) with lightweight
/// payload heuristics: HTTP method/status lines, TLS handshake records for
/// HTTPS on unusual ports, the BOOTP magic cookie for DHCP, SSDP start
/// lines, and the DNS/MDNS header shape.
AppProtocols detect_app_protocols(bool is_tcp, bool is_udp,
                                  std::uint16_t src_port,
                                  std::uint16_t dst_port,
                                  std::span<const std::uint8_t> payload);

/// Locates the UDP payload inside an Ethernet/IPv4 frame (for consumers
/// that need message content, e.g. the device inventory's DHCP/DNS
/// inspection). Empty span when the frame is not a well-formed IPv4/UDP
/// packet.
std::span<const std::uint8_t> udp_payload_of(
    std::span<const std::uint8_t> frame);

}  // namespace iotsentinel::net
