#include "net/builder.hpp"

#include <algorithm>

#include "net/bytes.hpp"
#include "net/protocols.hpp"

namespace iotsentinel::net {
namespace {

constexpr std::size_t kMinEthernetFrame = 60;  // without FCS

/// Multicast MAC for an IPv4 multicast group (01:00:5e + low 23 bits).
MacAddress ipv4_multicast_mac(Ipv4Address group) {
  return MacAddress::of(0x01, 0x00, 0x5e,
                        static_cast<std::uint8_t>(group.octet(1) & 0x7f),
                        group.octet(2), group.octet(3));
}

/// Multicast MAC for an IPv6 multicast address (33:33 + low 32 bits).
MacAddress ipv6_multicast_mac(const Ipv6Address& group) {
  const auto& o = group.octets();
  return MacAddress::of(0x33, 0x33, o[12], o[13], o[14], o[15]);
}

void pad_to_min(Bytes& frame) {
  if (frame.size() < kMinEthernetFrame) frame.resize(kMinEthernetFrame, 0);
}

}  // namespace

Bytes build_ethernet(const MacAddress& src, const MacAddress& dst,
                     std::uint16_t ethertype,
                     std::span<const std::uint8_t> payload) {
  ByteWriter w(14 + payload.size());
  w.bytes(std::span<const std::uint8_t>(dst.octets()));
  w.bytes(std::span<const std::uint8_t>(src.octets()));
  w.u16be(ethertype);
  w.bytes(payload);
  Bytes frame = w.take();
  pad_to_min(frame);
  return frame;
}

Bytes build_llc_frame(const MacAddress& src, const MacAddress& dst,
                      std::uint8_t dsap, std::uint8_t ssap,
                      std::span<const std::uint8_t> payload) {
  ByteWriter w(17 + payload.size());
  w.bytes(std::span<const std::uint8_t>(dst.octets()));
  w.bytes(std::span<const std::uint8_t>(src.octets()));
  w.u16be(static_cast<std::uint16_t>(3 + payload.size()));  // 802.3 length
  w.u8(dsap);
  w.u8(ssap);
  w.u8(0x03);  // control: unnumbered information
  w.bytes(payload);
  Bytes frame = w.take();
  pad_to_min(frame);
  return frame;
}

Bytes build_ipv4(const MacAddress& src_mac, const MacAddress& dst_mac,
                 Ipv4Address src_ip, Ipv4Address dst_ip, std::uint8_t proto,
                 std::span<const std::uint8_t> payload,
                 const Ipv4Options& opts) {
  ByteWriter options;
  if (opts.router_alert) {
    options.u8(ipopt::kRouterAlert);
    options.u8(4);
    options.u16be(0);
  }
  if (opts.padding) {
    // NOP padding; keep the options area 4-byte aligned afterwards.
    options.u8(ipopt::kNop);
  }
  while (options.size() % 4 != 0) options.u8(ipopt::kEndOfOptions);

  const std::size_t ihl_bytes = 20 + options.size();
  ByteWriter w(ihl_bytes + payload.size());
  w.u8(static_cast<std::uint8_t>(0x40 | (ihl_bytes / 4)));
  w.u8(0);  // DSCP/ECN
  w.u16be(static_cast<std::uint16_t>(ihl_bytes + payload.size()));
  w.u16be(0);       // identification
  w.u16be(0x4000);  // DF
  w.u8(opts.ttl);
  w.u8(proto);
  w.u16be(0);  // checksum patched below
  w.u32be(src_ip.value());
  w.u32be(dst_ip.value());
  w.bytes(options.data());
  Bytes header = w.take();
  const std::uint16_t csum =
      internet_checksum(std::span<const std::uint8_t>(header).first(ihl_bytes));
  header[10] = static_cast<std::uint8_t>(csum >> 8);
  header[11] = static_cast<std::uint8_t>(csum & 0xff);
  header.insert(header.end(), payload.begin(), payload.end());
  return build_ethernet(src_mac, dst_mac, ethertype::kIpv4, header);
}

Bytes build_ipv6(const MacAddress& src_mac, const MacAddress& dst_mac,
                 const Ipv6Address& src_ip, const Ipv6Address& dst_ip,
                 std::uint8_t next_header,
                 std::span<const std::uint8_t> payload, bool router_alert) {
  ByteWriter ext;
  if (router_alert) {
    // Hop-by-hop header: next, hdr-ext-len(0 => 8 bytes total), then the
    // RFC 2711 router-alert TLV (5, 2, value 0 = MLD) and PadN to fill.
    ext.u8(next_header);
    ext.u8(0);
    ext.u8(5);
    ext.u8(2);
    ext.u16be(0);
    ext.u8(1);  // PadN
    ext.u8(0);
  }

  ByteWriter w(40 + ext.size() + payload.size());
  w.u32be(0x60000000);
  w.u16be(static_cast<std::uint16_t>(ext.size() + payload.size()));
  w.u8(router_alert ? ipproto::kIpv6HopByHop : next_header);
  w.u8(router_alert ? 1 : 255);  // hop limit (MLD uses 1)
  w.bytes(std::span<const std::uint8_t>(src_ip.octets()));
  w.bytes(std::span<const std::uint8_t>(dst_ip.octets()));
  w.bytes(ext.data());
  w.bytes(payload);
  return build_ethernet(src_mac, dst_mac, ethertype::kIpv6, w.data());
}

Bytes build_udp_payload(std::uint16_t src_port, std::uint16_t dst_port,
                        std::span<const std::uint8_t> body) {
  ByteWriter w(8 + body.size());
  w.u16be(src_port);
  w.u16be(dst_port);
  w.u16be(static_cast<std::uint16_t>(8 + body.size()));
  w.u16be(0);  // checksum optional over IPv4
  w.bytes(body);
  return w.take();
}

Bytes build_tcp_payload(std::uint16_t src_port, std::uint16_t dst_port,
                        std::uint32_t seq, std::uint32_t ack, TcpFlags flags,
                        std::span<const std::uint8_t> body) {
  ByteWriter w(20 + body.size());
  w.u16be(src_port);
  w.u16be(dst_port);
  w.u32be(seq);
  w.u32be(ack);
  std::uint16_t off_flags = 5 << 12;
  if (flags.fin) off_flags |= 0x01;
  if (flags.syn) off_flags |= 0x02;
  if (flags.rst) off_flags |= 0x04;
  if (flags.psh) off_flags |= 0x08;
  if (flags.ack) off_flags |= 0x10;
  w.u16be(off_flags);
  w.u16be(0xffff);  // window
  w.u16be(0);       // checksum (not validated by the parser)
  w.u16be(0);       // urgent
  w.bytes(body);
  return w.take();
}

Bytes build_arp_request(const MacAddress& sender_mac, Ipv4Address sender_ip,
                        Ipv4Address target_ip) {
  ByteWriter w(28);
  w.u16be(1);                    // htype: Ethernet
  w.u16be(ethertype::kIpv4);     // ptype
  w.u8(6);
  w.u8(4);
  w.u16be(arpop::kRequest);
  w.bytes(std::span<const std::uint8_t>(sender_mac.octets()));
  w.u32be(sender_ip.value());
  w.pad(6);  // unknown target MAC
  w.u32be(target_ip.value());
  return build_ethernet(sender_mac, MacAddress::broadcast(), ethertype::kArp,
                        w.data());
}

Bytes build_gratuitous_arp(const MacAddress& sender_mac, Ipv4Address ip) {
  return build_arp_request(sender_mac, ip, ip);
}

Bytes build_eapol(const MacAddress& src, const MacAddress& dst,
                  std::uint8_t type, std::span<const std::uint8_t> body) {
  ByteWriter w(4 + body.size());
  w.u8(2);  // 802.1X-2004
  w.u8(type);
  w.u16be(static_cast<std::uint16_t>(body.size()));
  w.bytes(body);
  return build_ethernet(src, dst, ethertype::kEapol, w.data());
}

Bytes build_eapol_key(const MacAddress& src, const MacAddress& dst) {
  // WPA2 key descriptor: type(1) + info(2) + len(2) + replay(8) + nonce(32)
  // + iv(16) + rsc(8) + id(8) + mic(16) + datalen(2) = 95 bytes.
  Bytes body(95, 0);
  body[0] = 2;  // RSN key descriptor
  return build_eapol(src, dst, eapoltype::kKey, body);
}

Bytes build_dhcp(const MacAddress& client_mac, std::uint8_t message_type,
                 std::uint32_t xid, Ipv4Address src_ip,
                 const std::vector<std::uint8_t>& param_req,
                 const std::string& hostname) {
  ByteWriter w(300);
  w.u8(1);  // op: BOOTREQUEST
  w.u8(1);  // htype: Ethernet
  w.u8(6);  // hlen
  w.u8(0);  // hops
  w.u32be(xid);
  w.u16be(0);      // secs
  w.u16be(0x8000); // flags: broadcast
  w.u32be(src_ip.value());  // ciaddr
  w.u32be(0);               // yiaddr
  w.u32be(0);               // siaddr
  w.u32be(0);               // giaddr
  w.bytes(std::span<const std::uint8_t>(client_mac.octets()));
  w.pad(10);   // chaddr padding
  w.pad(64);   // sname
  w.pad(128);  // file
  // DHCP magic cookie + options.
  w.u8(0x63);
  w.u8(0x82);
  w.u8(0x53);
  w.u8(0x63);
  w.u8(53);  // message type
  w.u8(1);
  w.u8(message_type);
  w.u8(61);  // client identifier
  w.u8(7);
  w.u8(1);
  w.bytes(std::span<const std::uint8_t>(client_mac.octets()));
  if (!param_req.empty()) {
    w.u8(55);
    w.u8(static_cast<std::uint8_t>(param_req.size()));
    w.bytes(param_req);
  }
  if (!hostname.empty() && hostname.size() <= 255) {
    w.u8(12);
    w.u8(static_cast<std::uint8_t>(hostname.size()));
    w.bytes(hostname);
  }
  w.u8(255);  // end
  const Bytes udp = build_udp_payload(port::kDhcpClient, port::kDhcpServer,
                                      w.data());
  return build_ipv4(client_mac, MacAddress::broadcast(), src_ip,
                    Ipv4Address::broadcast(), ipproto::kUdp, udp);
}

namespace {

/// Encodes "a.b.c" as DNS labels.
Bytes dns_encode_name(const std::string& hostname) {
  Bytes out;
  std::size_t start = 0;
  while (start <= hostname.size()) {
    std::size_t dot = hostname.find('.', start);
    if (dot == std::string::npos) dot = hostname.size();
    const std::size_t len = dot - start;
    out.push_back(static_cast<std::uint8_t>(len));
    for (std::size_t i = start; i < dot; ++i)
      out.push_back(static_cast<std::uint8_t>(hostname[i]));
    start = dot + 1;
    if (dot == hostname.size()) break;
  }
  out.push_back(0);
  return out;
}

Bytes dns_query_body(std::uint16_t txn_id, const std::string& hostname,
                     bool response) {
  ByteWriter w(12 + hostname.size() + 6);
  w.u16be(txn_id);
  w.u16be(response ? 0x8400 : 0x0100);  // flags
  w.u16be(1);                           // QDCOUNT
  w.u16be(response ? 1 : 0);            // ANCOUNT
  w.u16be(0);
  w.u16be(0);
  w.bytes(dns_encode_name(hostname));
  w.u16be(1);  // QTYPE A
  w.u16be(1);  // QCLASS IN
  if (response) {
    w.u16be(0xc00c);  // name pointer
    w.u16be(1);
    w.u16be(1);
    w.u32be(120);  // TTL
    w.u16be(4);
    w.u32be(Ipv4Address::of(93, 184, 216, 34).value());
  }
  return w.take();
}

}  // namespace

Bytes build_dns_query(const MacAddress& src_mac, const MacAddress& dst_mac,
                      Ipv4Address src_ip, Ipv4Address server,
                      std::uint16_t src_port, std::uint16_t txn_id,
                      const std::string& hostname) {
  const Bytes body = dns_query_body(txn_id, hostname, /*response=*/false);
  const Bytes udp = build_udp_payload(src_port, port::kDns, body);
  return build_ipv4(src_mac, dst_mac, src_ip, server, ipproto::kUdp, udp);
}

Bytes build_mdns(const MacAddress& src_mac, Ipv4Address src_ip,
                 const std::string& name, bool is_response) {
  const Ipv4Address group = Ipv4Address::of(224, 0, 0, 251);
  const Bytes body = dns_query_body(0, name, is_response);
  const Bytes udp = build_udp_payload(port::kMdns, port::kMdns, body);
  return build_ipv4(src_mac, ipv4_multicast_mac(group), src_ip, group,
                    ipproto::kUdp, udp, {.ttl = 255});
}

Bytes build_ssdp_msearch(const MacAddress& src_mac, Ipv4Address src_ip,
                         std::uint16_t src_port,
                         const std::string& search_target) {
  const Ipv4Address group = Ipv4Address::of(239, 255, 255, 250);
  std::string msg =
      "M-SEARCH * HTTP/1.1\r\n"
      "HOST: 239.255.255.250:1900\r\n"
      "MAN: \"ssdp:discover\"\r\n"
      "MX: 3\r\n"
      "ST: " + search_target + "\r\n\r\n";
  ByteWriter body;
  body.bytes(msg);
  const Bytes udp = build_udp_payload(src_port, port::kSsdp, body.data());
  return build_ipv4(src_mac, ipv4_multicast_mac(group), src_ip, group,
                    ipproto::kUdp, udp, {.ttl = 2});
}

Bytes build_ssdp_notify(const MacAddress& src_mac, Ipv4Address src_ip,
                        const std::string& location_url,
                        const std::string& server_tag) {
  const Ipv4Address group = Ipv4Address::of(239, 255, 255, 250);
  std::string msg =
      "NOTIFY * HTTP/1.1\r\n"
      "HOST: 239.255.255.250:1900\r\n"
      "CACHE-CONTROL: max-age=1800\r\n"
      "LOCATION: " + location_url + "\r\n"
      "NT: upnp:rootdevice\r\n"
      "NTS: ssdp:alive\r\n"
      "SERVER: " + server_tag + "\r\n\r\n";
  ByteWriter body;
  body.bytes(msg);
  const Bytes udp = build_udp_payload(port::kSsdp, port::kSsdp, body.data());
  return build_ipv4(src_mac, ipv4_multicast_mac(group), src_ip, group,
                    ipproto::kUdp, udp, {.ttl = 2});
}

Bytes build_ntp_request(const MacAddress& src_mac, const MacAddress& dst_mac,
                        Ipv4Address src_ip, Ipv4Address server,
                        std::uint16_t src_port) {
  Bytes body(48, 0);
  body[0] = 0x23;  // LI=0, VN=4, mode=3 (client)
  const Bytes udp = build_udp_payload(src_port, port::kNtp, body);
  return build_ipv4(src_mac, dst_mac, src_ip, server, ipproto::kUdp, udp);
}

Bytes build_tcp_syn(const MacAddress& src_mac, const MacAddress& dst_mac,
                    Ipv4Address src_ip, Ipv4Address dst_ip,
                    std::uint16_t src_port, std::uint16_t dst_port,
                    std::uint32_t seq) {
  const Bytes tcp = build_tcp_payload(src_port, dst_port, seq, 0,
                                      {.syn = true}, {});
  return build_ipv4(src_mac, dst_mac, src_ip, dst_ip, ipproto::kTcp, tcp);
}

Bytes build_http_get(const MacAddress& src_mac, const MacAddress& dst_mac,
                     Ipv4Address src_ip, Ipv4Address dst_ip,
                     std::uint16_t src_port, const std::string& host,
                     const std::string& path, const std::string& user_agent) {
  std::string msg = "GET " + path +
                    " HTTP/1.1\r\n"
                    "Host: " + host + "\r\n"
                    "User-Agent: " + user_agent + "\r\n"
                    "Connection: keep-alive\r\n\r\n";
  ByteWriter body;
  body.bytes(msg);
  const Bytes tcp = build_tcp_payload(src_port, port::kHttp, 1000, 2000,
                                      {.ack = true, .psh = true}, body.data());
  return build_ipv4(src_mac, dst_mac, src_ip, dst_ip, ipproto::kTcp, tcp);
}

Bytes build_tls_client_hello(const MacAddress& src_mac,
                             const MacAddress& dst_mac, Ipv4Address src_ip,
                             Ipv4Address dst_ip, std::uint16_t src_port,
                             const std::string& sni) {
  // Minimal but structurally valid TLS 1.2 ClientHello with an SNI
  // extension; only the record shape matters to the detector.
  ByteWriter hello;
  hello.u16be(0x0303);  // client version
  hello.pad(32, 0xab);  // random
  hello.u8(0);          // session id length
  hello.u16be(4);       // cipher suites length
  hello.u16be(0xc02f);
  hello.u16be(0x009c);
  hello.u8(1);  // compression methods length
  hello.u8(0);
  // Extensions: server_name only.
  ByteWriter sni_ext;
  sni_ext.u16be(static_cast<std::uint16_t>(sni.size() + 3));  // list length
  sni_ext.u8(0);                                              // host_name
  sni_ext.u16be(static_cast<std::uint16_t>(sni.size()));
  sni_ext.bytes(sni);
  ByteWriter exts;
  exts.u16be(0);  // extension type: server_name
  exts.u16be(static_cast<std::uint16_t>(sni_ext.size()));
  exts.bytes(sni_ext.data());
  hello.u16be(static_cast<std::uint16_t>(exts.size()));
  hello.bytes(exts.data());

  ByteWriter handshake;
  handshake.u8(1);  // ClientHello
  handshake.u8(0);
  handshake.u16be(static_cast<std::uint16_t>(hello.size()));
  handshake.bytes(hello.data());

  ByteWriter record;
  record.u8(22);  // handshake
  record.u16be(0x0303);
  record.u16be(static_cast<std::uint16_t>(handshake.size()));
  record.bytes(handshake.data());

  const Bytes tcp = build_tcp_payload(src_port, port::kHttps, 3000, 4000,
                                      {.ack = true, .psh = true},
                                      record.data());
  return build_ipv4(src_mac, dst_mac, src_ip, dst_ip, ipproto::kTcp, tcp);
}

Bytes build_igmp_join(const MacAddress& src_mac, Ipv4Address src_ip,
                      Ipv4Address group) {
  ByteWriter igmp(8);
  igmp.u8(0x16);  // IGMPv2 membership report
  igmp.u8(0);
  igmp.u16be(0);  // checksum patched below
  igmp.u32be(group.value());
  Bytes body = igmp.take();
  const std::uint16_t csum = internet_checksum(body);
  body[2] = static_cast<std::uint8_t>(csum >> 8);
  body[3] = static_cast<std::uint8_t>(csum & 0xff);
  return build_ipv4(src_mac, ipv4_multicast_mac(group), src_ip, group,
                    /*proto=*/2, body,
                    {.ttl = 1, .router_alert = true, .padding = true});
}

Bytes build_icmp_echo(const MacAddress& src_mac, const MacAddress& dst_mac,
                      Ipv4Address src_ip, Ipv4Address dst_ip,
                      std::uint16_t ident, std::uint16_t seq,
                      std::size_t payload_len) {
  ByteWriter icmp(8 + payload_len);
  icmp.u8(8);  // echo request
  icmp.u8(0);
  icmp.u16be(0);  // checksum patched below
  icmp.u16be(ident);
  icmp.u16be(seq);
  for (std::size_t i = 0; i < payload_len; ++i)
    icmp.u8(static_cast<std::uint8_t>('a' + i % 26));
  Bytes body = icmp.take();
  const std::uint16_t csum = internet_checksum(body);
  body[2] = static_cast<std::uint8_t>(csum >> 8);
  body[3] = static_cast<std::uint8_t>(csum & 0xff);
  return build_ipv4(src_mac, dst_mac, src_ip, dst_ip, ipproto::kIcmp, body);
}

Bytes build_icmpv6_router_solicit(const MacAddress& src_mac) {
  const Ipv6Address src = Ipv6Address::link_local_from_mac(src_mac.octets());
  const Ipv6Address dst = Ipv6Address::all_routers();
  ByteWriter icmp(16);
  icmp.u8(133);  // router solicitation
  icmp.u8(0);
  icmp.u16be(0);  // checksum (not validated)
  icmp.u32be(0);  // reserved
  // Source link-layer address option.
  icmp.u8(1);
  icmp.u8(1);
  icmp.bytes(std::span<const std::uint8_t>(src_mac.octets()));
  return build_ipv6(src_mac, ipv6_multicast_mac(dst), src, dst,
                    ipproto::kIcmpv6, icmp.data());
}

Bytes build_mldv1_report(const MacAddress& src_mac) {
  const Ipv6Address src = Ipv6Address::link_local_from_mac(src_mac.octets());
  // Join the solicited-node multicast group derived from the MAC.
  auto sol = Ipv6Address::of_groups({0xff02, 0, 0, 0, 0, 1, 0xff00, 0});
  auto octets = sol.octets();
  octets[13] = src_mac.octets()[3];
  octets[14] = src_mac.octets()[4];
  octets[15] = src_mac.octets()[5];
  const Ipv6Address group(octets);

  ByteWriter icmp(24);
  icmp.u8(131);  // MLDv1 report
  icmp.u8(0);
  icmp.u16be(0);  // checksum
  icmp.u16be(0);  // max response delay
  icmp.u16be(0);  // reserved
  icmp.bytes(std::span<const std::uint8_t>(group.octets()));
  return build_ipv6(src_mac, ipv6_multicast_mac(group), src, group,
                    ipproto::kIcmpv6, icmp.data(), /*router_alert=*/true);
}

}  // namespace iotsentinel::net
