// Parsed-packet summary produced by the protocol parser.
//
// This is the single interface between the packet substrate and the
// fingerprinting layer: every Table-I feature can be computed from a
// ParsedPacket without re-touching raw bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/ip_address.hpp"
#include "net/mac_address.hpp"

namespace iotsentinel::net {

/// Application-layer protocols recognised by the detector; one bit each so
/// a packet can carry several labels (e.g. DHCP is also BOOTP).
struct AppProtocols {
  bool http = false;
  bool https = false;
  bool dhcp = false;
  bool bootp = false;
  bool ssdp = false;
  bool dns = false;
  bool mdns = false;
  bool ntp = false;

  friend bool operator==(const AppProtocols&, const AppProtocols&) = default;
};

/// Flattened, header-only summary of one captured frame.
///
/// Field groups mirror the paper's Table I: link-layer flags, network-layer
/// flags, transport flags, application protocols, IP options, packet
/// content, addresses and ports. No payload bytes are retained beyond the
/// `has_payload` flag, so fingerprints work on encrypted traffic.
struct ParsedPacket {
  // --- capture metadata -------------------------------------------------
  /// Capture timestamp in microseconds (virtual time in simulation).
  std::uint64_t timestamp_us = 0;
  /// Total frame length on the wire, in bytes.
  std::uint32_t wire_size = 0;

  // --- link layer --------------------------------------------------------
  MacAddress src_mac;
  MacAddress dst_mac;
  /// True when the frame is 802.3 with an LLC header (length field instead
  /// of an EtherType).
  bool is_llc = false;
  bool is_arp = false;
  /// 802.1X EAPoL (WPA2 key handshake frames during WiFi association).
  bool is_eapol = false;

  // --- network layer -----------------------------------------------------
  bool is_ipv4 = false;
  bool is_ipv6 = false;
  bool is_icmp = false;
  bool is_icmpv6 = false;
  /// IPv4 header options observed (Table I "IP options" features).
  bool ip_opt_padding = false;
  bool ip_opt_router_alert = false;
  std::optional<IpAddress> src_ip;
  std::optional<IpAddress> dst_ip;

  // --- transport layer ---------------------------------------------------
  bool is_tcp = false;
  bool is_udp = false;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;

  // --- application layer -------------------------------------------------
  AppProtocols app;

  // --- content -----------------------------------------------------------
  /// True when bytes remain after all recognised headers ("raw data").
  bool has_payload = false;
  /// Number of payload bytes after the last recognised header.
  std::uint32_t payload_size = 0;

  /// Any IP protocol present?
  [[nodiscard]] bool is_ip() const { return is_ipv4 || is_ipv6; }

  /// One-line debug rendering, e.g.
  /// "ts=12000us 60B aa:..->ff:.. IPv4 UDP 68->67 DHCP".
  [[nodiscard]] std::string summary() const;
};

}  // namespace iotsentinel::net
