// IPv4 / IPv6 address value types and a tagged union over both.
//
// Fingerprint feature f21 ("destination IP counter") needs a hashable,
// comparable address key; enforcement rules (restricted isolation level)
// carry whitelists of permitted addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace iotsentinel::net {

/// A 32-bit IPv4 address.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}

  static constexpr Ipv4Address of(std::uint8_t a, std::uint8_t b,
                                  std::uint8_t c, std::uint8_t d) {
    return Ipv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses dotted-quad "a.b.c.d".
  static std::optional<Ipv4Address> parse(std::string_view text);

  static constexpr Ipv4Address any() { return Ipv4Address(0); }
  static constexpr Ipv4Address broadcast() { return Ipv4Address(0xffffffff); }

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// True for 224.0.0.0/4.
  [[nodiscard]] constexpr bool is_multicast() const {
    return (value_ & 0xf0000000) == 0xe0000000;
  }

  /// True for 255.255.255.255.
  [[nodiscard]] constexpr bool is_broadcast() const {
    return value_ == 0xffffffff;
  }

  /// True for RFC1918 private ranges.
  [[nodiscard]] constexpr bool is_private() const {
    return (value_ & 0xff000000) == 0x0a000000 ||    // 10/8
           (value_ & 0xfff00000) == 0xac100000 ||    // 172.16/12
           (value_ & 0xffff0000) == 0xc0a80000;      // 192.168/16
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Address&,
                                    const Ipv4Address&) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A 128-bit IPv6 address.
class Ipv6Address {
 public:
  constexpr Ipv6Address() = default;
  constexpr explicit Ipv6Address(std::array<std::uint8_t, 16> octets)
      : octets_(octets) {}

  /// Builds an address from 8 16-bit groups (as written in colon notation).
  static constexpr Ipv6Address of_groups(std::array<std::uint16_t, 8> groups) {
    std::array<std::uint8_t, 16> o{};
    for (std::size_t i = 0; i < 8; ++i) {
      o[2 * i] = static_cast<std::uint8_t>(groups[i] >> 8);
      o[2 * i + 1] = static_cast<std::uint8_t>(groups[i] & 0xff);
    }
    return Ipv6Address(o);
  }

  /// The all-nodes link-local multicast address ff02::1.
  static constexpr Ipv6Address all_nodes() {
    return of_groups({0xff02, 0, 0, 0, 0, 0, 0, 1});
  }

  /// The all-routers link-local multicast address ff02::2.
  static constexpr Ipv6Address all_routers() {
    return of_groups({0xff02, 0, 0, 0, 0, 0, 0, 2});
  }

  /// Derives the EUI-64 link-local address fe80::... from a MAC address,
  /// as IoT devices do during SLAAC when joining a network.
  static Ipv6Address link_local_from_mac(
      const std::array<std::uint8_t, 6>& mac);

  [[nodiscard]] constexpr const std::array<std::uint8_t, 16>& octets() const {
    return octets_;
  }

  [[nodiscard]] constexpr bool is_multicast() const {
    return octets_[0] == 0xff;
  }

  /// Canonical-ish textual form (full groups, no zero compression).
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv6Address&,
                                    const Ipv6Address&) = default;

 private:
  std::array<std::uint8_t, 16> octets_{};
};

/// Either an IPv4 or an IPv6 address.
class IpAddress {
 public:
  IpAddress() : addr_(Ipv4Address()) {}
  IpAddress(Ipv4Address v4) : addr_(v4) {}           // NOLINT(google-explicit-constructor)
  IpAddress(Ipv6Address v6) : addr_(std::move(v6)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_v4() const {
    return std::holds_alternative<Ipv4Address>(addr_);
  }
  [[nodiscard]] bool is_v6() const { return !is_v4(); }

  [[nodiscard]] const Ipv4Address& v4() const {
    return std::get<Ipv4Address>(addr_);
  }
  [[nodiscard]] const Ipv6Address& v6() const {
    return std::get<Ipv6Address>(addr_);
  }

  [[nodiscard]] bool is_multicast() const {
    return is_v4() ? v4().is_multicast() : v6().is_multicast();
  }

  [[nodiscard]] std::string to_string() const {
    return is_v4() ? v4().to_string() : v6().to_string();
  }

  friend auto operator<=>(const IpAddress&, const IpAddress&) = default;
  friend bool operator==(const IpAddress&, const IpAddress&) = default;

 private:
  std::variant<Ipv4Address, Ipv6Address> addr_;
};

}  // namespace iotsentinel::net

template <>
struct std::hash<iotsentinel::net::Ipv4Address> {
  std::size_t operator()(const iotsentinel::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<iotsentinel::net::Ipv6Address> {
  std::size_t operator()(const iotsentinel::net::Ipv6Address& a) const noexcept {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    for (int i = 0; i < 8; ++i) hi = (hi << 8) | a.octets()[static_cast<std::size_t>(i)];
    for (int i = 8; i < 16; ++i) lo = (lo << 8) | a.octets()[static_cast<std::size_t>(i)];
    return std::hash<std::uint64_t>{}(hi * 0x9e3779b97f4a7c15ULL ^ lo);
  }
};

template <>
struct std::hash<iotsentinel::net::IpAddress> {
  std::size_t operator()(const iotsentinel::net::IpAddress& a) const noexcept {
    if (a.is_v4()) return std::hash<iotsentinel::net::Ipv4Address>{}(a.v4());
    return std::hash<iotsentinel::net::Ipv6Address>{}(a.v6()) ^ 0x1;
  }
};
